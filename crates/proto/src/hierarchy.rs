//! The hierarchical recovery architecture of §3.3.3, generalized to
//! arbitrary N-level domain trees.
//!
//! Every *active* domain — one hosting the source, members, aggregated
//! populations, or lying on an ancestry chain between them — runs its own
//! SMRP session over the domain's induced subgraph: rooted at the real
//! source in the source's domain, at the upward-relaying agent on the
//! source's ancestry chain, and at the domain's border agent everywhere
//! else. Child-domain agents appear as members of their parent domain's
//! session, weighted by the total receiver population they serve, so the
//! parent's Eq. 2 `SHR`/`N` state aggregates entire subtrees of domains.
//!
//! The payoff is failure *confinement*: a broken component is attributed to
//! the recovery domain that owns it (the common domain of a link's
//! endpoints, or the parent side of a gateway link) and the repair — a
//! local detour computed inside that domain's subgraph — never touches the
//! rest of the tree. When a domain's primary border attachment itself dies
//! and the domain has a redundant gateway, the parent *elects* a new agent
//! through the backup attachment instead of giving up; only then does a
//! second domain participate.
//!
//! The 2-level transit-stub instantiation the paper evaluates is
//! [`HierarchicalSession`], now a thin wrapper over [`NLevelSession`] at
//! `levels = 2` (see [`NLevelTopology::from_transit_stub`]); the
//! `hierarchy_differential` test proves the wrapper reproduces the original
//! 2-level engine case-for-case.

use smrp_core::recovery::{self, DetourKind};
use smrp_core::{MulticastTree, SmrpConfig, SmrpError, SmrpSession};
use smrp_net::dijkstra::{self, Constraints};
use smrp_net::nlevel::{AggregatedPopulation, NLevelTopology};
use smrp_net::transit_stub::{DomainId, TransitStubTopology};
use smrp_net::{FailureScenario, Graph, LinkId, NodeId, Path};

/// Where a failure landed in the 2-level (transit-stub) hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureScope {
    /// Inside one stub recovery domain.
    Stub(DomainId),
    /// In the transit domain or on a stub-transit gateway link.
    Transit,
}

/// One per-domain session: a tree over a domain subgraph.
#[derive(Debug, Clone)]
struct DomainSession {
    /// Induced subgraph of the domain (plus the borders of its active
    /// children, whose gateway links are induced automatically).
    graph: Graph,
    /// Local-to-global node id mapping.
    to_global: Vec<NodeId>,
    /// Global-to-local (dense, indexed by global id).
    to_local: Vec<Option<NodeId>>,
    /// The multicast tree within the domain, rooted at the agent.
    tree: MulticastTree,
}

impl DomainSession {
    fn build(
        parent: &Graph,
        nodes: &[NodeId],
        source_global: NodeId,
        members_global: &[(NodeId, u32)],
        config: SmrpConfig,
    ) -> Result<Self, SmrpError> {
        let (graph, to_global) = parent.induced_subgraph(nodes);
        let mut to_local = vec![None; parent.node_count()];
        for (local_idx, &global) in to_global.iter().enumerate() {
            to_local[global.index()] = Some(NodeId::new(local_idx));
        }
        let source =
            to_local[source_global.index()].ok_or(SmrpError::UnknownNode(source_global))?;
        let mut sess = SmrpSession::new(&graph, source, config)?;
        for &(m, w) in members_global {
            let local = to_local[m.index()].ok_or(SmrpError::UnknownNode(m))?;
            if local != source {
                sess.join_weighted(local, w)?;
            }
        }
        let tree = sess.tree().clone();
        Ok(DomainSession {
            graph,
            to_global,
            to_local,
            tree,
        })
    }

    fn localize_scenario(&self, parent: &Graph, scenario: &FailureScenario) -> FailureScenario {
        let mut local = FailureScenario::none();
        for n in scenario.failed_nodes() {
            if let Some(l) = self.to_local[n.index()] {
                local.fail_node(l);
            }
        }
        for lk in scenario.failed_links() {
            let link = parent.link(lk);
            let (Some(a), Some(b)) = (
                self.to_local[link.a().index()],
                self.to_local[link.b().index()],
            ) else {
                continue;
            };
            if let Some(local_link) = self.graph.link_between(a, b) {
                local.fail_link(local_link);
            }
        }
        local
    }
}

/// Outcome of a confined recovery in the 2-level instantiation.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchicalRecovery {
    /// Which level handled the failure.
    pub scope: FailureScope,
    /// Members (global ids) that lost service.
    pub affected_members: Vec<NodeId>,
    /// Restoration paths in global node ids, one per disconnected fragment
    /// root inside the owning domain.
    pub restoration_paths: Vec<Vec<NodeId>>,
    /// Total recovery distance (sum over restoration paths).
    pub recovery_distance: f64,
    /// Number of domains whose state was touched by the repair (always 1
    /// here — the point of the architecture).
    pub domains_involved: usize,
}

/// A new-agent election performed when a domain's primary border
/// attachment died and a redundant backup gateway could take over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentElection {
    /// The child domain whose attachment was lost.
    pub domain: DomainId,
    /// The dead primary agent (the old border node).
    pub old_agent: NodeId,
    /// The newly elected agent (the backup border node).
    pub new_agent: NodeId,
    /// The parent-domain node the backup gateway attaches through.
    pub parent_attach: NodeId,
}

/// One wire-installable recovery plan: the restoration path to load into
/// a fragment root's router lane ahead of a simulated failure run.
///
/// For a confined repair the path is exactly the analytic restoration
/// path (fragment root → in-domain attach). For a new-agent election it
/// runs from the orphaned child border through the child domain to the
/// backup border, across the backup gateway, and up the owner domain
/// toward the session root — the graft cascade merges at the first live
/// on-tree relay it meets, so the tail past the merge point is unused.
#[derive(Debug, Clone, PartialEq)]
pub struct WirePlan {
    /// The fragment root the plan is installed at (global id).
    pub member: NodeId,
    /// Hop-adjacent restoration path in global ids, `member` first.
    pub path: Vec<NodeId>,
    /// One-way propagation delay of `path`, in milliseconds.
    pub delay_ms: f64,
}

/// Outcome of an N-level domain-confined recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainRecovery {
    /// The domain that owned and repaired the failure.
    pub owner: DomainId,
    /// Real members (global ids) that lost service, conservatively: when
    /// the owner's tree was hit, every member it serves directly plus every
    /// member under each affected child agent's domain subtree.
    pub affected_members: Vec<NodeId>,
    /// Total receivers that lost service: one per affected member plus the
    /// aggregated populations under affected domains.
    pub affected_population: u64,
    /// Restoration paths in global node ids, one per disconnected fragment
    /// root inside the owning domain.
    pub restoration_paths: Vec<Vec<NodeId>>,
    /// Total recovery distance (sum over restoration paths).
    pub recovery_distance: f64,
    /// Number of domains whose state was touched by the repair: 0 when
    /// nothing was affected, 1 for a confined repair, `1 + elected` when
    /// border attachments died and new agents were elected.
    pub domains_involved: usize,
    /// New-agent elections performed (empty for a confined repair).
    pub elections: Vec<AgentElection>,
    /// Wire-installable plans, one per disconnected fragment root — the
    /// seam into `MultiSession::run_failure_planned_traced`.
    pub plans: Vec<WirePlan>,
}

/// An N-level hierarchical SMRP session (§3.3.3's generalization) over an
/// [`NLevelTopology`].
///
/// Owns a clone of the topology so campaign drivers can hold sessions
/// without self-referential lifetimes. Aggregated populations declared on
/// the topology join their leaf-domain sessions weighted by receiver
/// count, and child agents join parent sessions weighted by the total
/// population they serve (aggregated Eq. 2).
#[derive(Debug, Clone)]
pub struct NLevelSession {
    topo: NLevelTopology,
    sessions: Vec<Option<DomainSession>>,
    source: NodeId,
    members: Vec<NodeId>,
    populations: Vec<AggregatedPopulation>,
}

/// Appends `(node, w)` to a weighted member list, merging weights when the
/// node is already present (e.g. a population attached at a member node).
fn push_weighted(list: &mut Vec<(NodeId, u32)>, node: NodeId, w: u32) {
    if let Some(entry) = list.iter_mut().find(|e| e.0 == node) {
        entry.1 = entry.1.saturating_add(w);
    } else {
        list.push((node, w));
    }
}

impl NLevelSession {
    /// Builds the hierarchy of per-domain sessions, using the aggregated
    /// populations declared on the topology.
    ///
    /// # Errors
    ///
    /// Fails if tree construction fails inside any active domain.
    pub fn build(
        topo: &NLevelTopology,
        source: NodeId,
        members: &[NodeId],
        config: SmrpConfig,
    ) -> Result<Self, SmrpError> {
        Self::build_weighted(topo, source, members, topo.populations(), config)
    }

    /// Builds the hierarchy with an explicit population list (overriding
    /// whatever the topology declares).
    ///
    /// # Errors
    ///
    /// Fails if tree construction fails inside any active domain.
    pub fn build_weighted(
        topo: &NLevelTopology,
        source: NodeId,
        members: &[NodeId],
        populations: &[AggregatedPopulation],
        config: SmrpConfig,
    ) -> Result<Self, SmrpError> {
        let graph = topo.graph();
        let n_domains = topo.domains().len();

        // Mark active domains: hosts of the source/members/populations plus
        // all their ancestors (traffic transits through them).
        let mut active = vec![false; n_domains];
        let mark = |active: &mut Vec<bool>, d: DomainId| {
            for a in topo.ancestry(d) {
                active[a.index()] = true;
            }
        };
        mark(&mut active, topo.domain_of(source));
        for &m in members {
            mark(&mut active, topo.domain_of(m));
        }
        for p in populations {
            mark(&mut active, p.domain);
        }

        // Receivers served under each domain's subtree: real members count
        // one, populations count their receivers. Child agents join parent
        // sessions with this weight so Eq. 2 aggregates whole subtrees.
        let mut served = vec![0u64; n_domains];
        let credit = |served: &mut Vec<u64>, d: DomainId, w: u64| {
            for a in topo.ancestry(d) {
                served[a.index()] += w;
            }
        };
        for &m in members {
            credit(&mut served, topo.domain_of(m), 1);
        }
        for p in populations {
            credit(&mut served, p.domain, u64::from(p.receivers));
        }

        // The source's ancestry chain (domain ids), for root selection.
        let source_chain = topo.ancestry(topo.domain_of(source));

        let mut sessions: Vec<Option<DomainSession>> = vec![None; n_domains];
        for domain in topo.domains() {
            if !active[domain.id().index()] {
                continue;
            }
            let on_source_chain = source_chain.contains(&domain.id());

            // Subgraph: the domain's nodes plus the borders of its active
            // children (their gateway links are induced automatically).
            let mut nodes: Vec<NodeId> = domain.nodes().to_vec();
            let mut child_agents: Vec<(NodeId, u32)> = Vec::new();
            let mut source_child_agent = None;
            for child in topo.children_of(domain.id()) {
                if !active[child.id().index()] {
                    continue;
                }
                let (border, _) = child.attachment().expect("children have attachments");
                nodes.push(border);
                if source_chain.contains(&child.id()) {
                    source_child_agent = Some(border);
                } else {
                    let w = u32::try_from(served[child.id().index()].max(1)).unwrap_or(u32::MAX);
                    child_agents.push((border, w));
                }
            }

            // Local root: the real source, the agent relaying it upward,
            // or this domain's border.
            let local_root = if domain.contains(source) {
                source
            } else if let Some(agent) = source_child_agent {
                agent
            } else {
                domain
                    .attachment()
                    .map(|(border, _)| border)
                    .expect("non-root domains have borders")
            };

            // Local members: real members here, this domain's aggregated
            // populations, active child agents (population-weighted), and —
            // on the source chain below the root domain — this domain's own
            // border so data keeps flowing upward.
            let mut local_members: Vec<(NodeId, u32)> = Vec::new();
            for &m in members {
                if domain.contains(m) {
                    push_weighted(&mut local_members, m, 1);
                }
            }
            for p in populations {
                if p.domain == domain.id() {
                    push_weighted(&mut local_members, p.node, p.receivers);
                }
            }
            for (agent, w) in child_agents {
                push_weighted(&mut local_members, agent, w);
            }
            if on_source_chain && domain.parent().is_some() {
                let (border, _) = domain.attachment().expect("non-root domain");
                if border != local_root && !local_members.iter().any(|e| e.0 == border) {
                    local_members.push((border, 1));
                }
            }
            local_members.retain(|&(m, _)| m != local_root);

            sessions[domain.id().index()] = Some(DomainSession::build(
                graph,
                &nodes,
                local_root,
                &local_members,
                config,
            )?);
        }

        Ok(NLevelSession {
            topo: topo.clone(),
            sessions,
            source,
            members: members.to_vec(),
            populations: populations.to_vec(),
        })
    }

    /// The real multicast source.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// All real members.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// The aggregated populations this session serves.
    pub fn populations(&self) -> &[AggregatedPopulation] {
        &self.populations
    }

    /// Total receivers served: one per real member plus every aggregated
    /// population.
    pub fn total_population(&self) -> u64 {
        self.members.len() as u64
            + self
                .populations
                .iter()
                .map(|p| u64::from(p.receivers))
                .sum::<u64>()
    }

    /// The topology this session runs over.
    pub fn topology(&self) -> &NLevelTopology {
        &self.topo
    }

    /// Number of domains running a session.
    pub fn active_domains(&self) -> usize {
        self.sessions.iter().flatten().count()
    }

    /// Ids of the domains running a session, in domain order.
    pub fn active_domain_ids(&self) -> Vec<DomainId> {
        self.sessions
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| DomainId::new(i))
            .collect()
    }

    /// The global node set of a domain's session subgraph (the domain's
    /// nodes plus its active children's borders), or `None` for an
    /// inactive domain. Control messages of a domain-confined repair stay
    /// inside this set — the `DomainLocality` audit's ground truth.
    pub fn domain_session_nodes(&self, domain: DomainId) -> Option<&[NodeId]> {
        self.sessions[domain.index()]
            .as_ref()
            .map(|s| s.to_global.as_slice())
    }

    /// The session root (agent or real source) of an active domain, in
    /// global node ids.
    pub fn domain_root(&self, domain: DomainId) -> Option<NodeId> {
        self.sessions[domain.index()]
            .as_ref()
            .map(|s| s.to_global[s.tree.source().index()])
    }

    /// Weighted members of an active domain's session in global node ids
    /// (real members, population attachment points, and child agents).
    pub fn domain_members_global(&self, domain: DomainId) -> Option<Vec<(NodeId, u32)>> {
        let s = self.sessions[domain.index()].as_ref()?;
        Some(
            s.tree
                .members()
                .map(|m| (s.to_global[m.index()], s.tree.member_weight(m)))
                .collect(),
        )
    }

    /// Re-expresses an active domain's session tree in global node ids
    /// over the full topology graph, so wire-level drivers can run one
    /// protocol lane per domain on the shared graph.
    pub fn domain_tree_global(&self, domain: DomainId) -> Option<MulticastTree> {
        let s = self.sessions[domain.index()].as_ref()?;
        let graph = self.topo.graph();
        let root = s.to_global[s.tree.source().index()];
        let mut tree = MulticastTree::new(graph, root).ok()?;
        for m in s.tree.members() {
            // Chain from the member back toward the root, trimmed at the
            // first node already on the global tree (the merger).
            let mut chain = Vec::new();
            let mut cur = Some(m);
            while let Some(u) = cur {
                let g = s.to_global[u.index()];
                chain.push(g);
                if tree.is_on_tree(g) {
                    break;
                }
                cur = s.tree.parent(u);
            }
            if chain.len() > 1 {
                tree.attach_path(&Path::new(chain));
            }
            let m_global = s.to_global[m.index()];
            tree.set_member(m_global, true).ok()?;
            let w = s.tree.member_weight(m);
            if w != 1 {
                tree.set_member_weight(m_global, w).ok()?;
            }
        }
        Some(tree)
    }

    /// Attributes a link failure to the domain that owns it: the common
    /// domain of its endpoints, or — for a gateway link — the parent-side
    /// domain.
    pub fn owning_domain(&self, link: LinkId) -> DomainId {
        self.topo.owning_domain_of_link(link)
    }

    /// Recovers from a single link failure inside its owning domain,
    /// electing new agents through backup gateways when a child's primary
    /// attachment died.
    ///
    /// # Errors
    ///
    /// Returns a message when the owning domain's subgraph offers no
    /// detour and no backup attachment can take over.
    pub fn recover(&self, link: LinkId) -> Result<DomainRecovery, String> {
        let owner = self.owning_domain(link);
        let graph = self.topo.graph();
        let scenario = FailureScenario::link(link);
        let empty = |owner| DomainRecovery {
            owner,
            affected_members: Vec::new(),
            affected_population: 0,
            restoration_paths: Vec::new(),
            recovery_distance: 0.0,
            domains_involved: 0,
            elections: Vec::new(),
            plans: Vec::new(),
        };
        let Some(session) = self.sessions[owner.index()].as_ref() else {
            // The failure landed in a domain with no session state: nobody
            // is affected and nothing needs repair.
            return Ok(empty(owner));
        };
        let local_scenario = session.localize_scenario(graph, &scenario);
        if local_scenario.is_empty() {
            // The failed component is not part of this domain's subgraph:
            // nothing on the tree is affected.
            return Ok(empty(owner));
        }
        let mut paths = Vec::new();
        let mut plans = Vec::new();
        let mut total_rd = 0.0;
        let mut any_affected = false;
        let mut elections: Vec<AgentElection> = Vec::new();
        for n in session.tree.on_tree_nodes() {
            let Some(p) = session.tree.parent(n) else {
                continue;
            };
            let Some(l) = session.graph.link_between(n, p) else {
                continue;
            };
            if local_scenario.link_usable(&session.graph, l) {
                continue;
            }
            any_affected = true;
            match recovery::recover(
                &session.graph,
                &session.tree,
                &local_scenario,
                n,
                DetourKind::Local,
            ) {
                Ok(rec) => {
                    total_rd += rec.recovery_distance();
                    let global: Vec<NodeId> = rec
                        .restoration_path()
                        .nodes()
                        .iter()
                        .map(|ln| session.to_global[ln.index()])
                        .collect();
                    plans.push(WirePlan {
                        member: global[0],
                        path: global.clone(),
                        delay_ms: rec.restoration_path().delay(&session.graph),
                    });
                    paths.push(global);
                }
                Err(e) => {
                    // No in-domain detour. If the fragment root is a child
                    // agent whose attachment died, elect a new agent over a
                    // backup gateway; otherwise the failure is fatal here.
                    match self.try_elect(owner, session, &scenario, &local_scenario, n) {
                        Some((election, path, dist, plan)) => {
                            total_rd += dist;
                            paths.push(path);
                            elections.push(election);
                            plans.push(plan);
                        }
                        None => {
                            return Err(format!(
                                "fragment at {n} cannot recover inside domain {owner}: {e}"
                            ));
                        }
                    }
                }
            }
        }

        // Affected members, conservatively (the reporting granularity of
        // the paper's campaign): when the owner's tree was hit, every real
        // member the owner serves directly, plus — for each affected child
        // agent — every member and population under that child's domain
        // subtree.
        let mut affected = Vec::new();
        let mut affected_population = 0u64;
        if any_affected {
            for &m in &self.members {
                if self.topo.domain_of(m) == owner {
                    affected.push(m);
                    affected_population += 1;
                }
            }
            for p in &self.populations {
                if p.domain == owner {
                    affected_population += u64::from(p.receivers);
                }
            }
            let affected_local =
                recovery::affected_members(&session.graph, &session.tree, &local_scenario);
            for a in affected_local {
                let g = session.to_global[a.index()];
                let agent_domain = self.topo.domain_of(g);
                if agent_domain == owner {
                    continue;
                }
                for &m in &self.members {
                    if self
                        .topo
                        .ancestry(self.topo.domain_of(m))
                        .contains(&agent_domain)
                        && !affected.contains(&m)
                    {
                        affected.push(m);
                        affected_population += 1;
                    }
                }
                for p in &self.populations {
                    if self.topo.ancestry(p.domain).contains(&agent_domain) {
                        affected_population += u64::from(p.receivers);
                    }
                }
            }
        }

        let domains_involved = if any_affected {
            let mut elected: Vec<DomainId> = elections.iter().map(|e| e.domain).collect();
            elected.dedup();
            1 + elected.len()
        } else {
            0
        };
        Ok(DomainRecovery {
            owner,
            affected_members: affected,
            affected_population,
            restoration_paths: paths,
            recovery_distance: total_rd,
            domains_involved,
            elections,
            plans,
        })
    }

    /// Attempts a new-agent election for a fragment rooted at `n` (local to
    /// `session`): if `n` is an active child's primary border and the child
    /// has a scenario-usable backup gateway, returns the election, the
    /// restoration path (owner-domain path to the backup's parent
    /// attachment, then across the backup gateway to the new agent), its
    /// delay, and the wire plan the orphaned agent installs (the same
    /// corridor walked from its own side: through the child domain to the
    /// backup border, across the backup gateway, up the owner domain).
    fn try_elect(
        &self,
        owner: DomainId,
        session: &DomainSession,
        scenario: &FailureScenario,
        local_scenario: &FailureScenario,
        n: NodeId,
    ) -> Option<(AgentElection, Vec<NodeId>, f64, WirePlan)> {
        let graph = self.topo.graph();
        let g = session.to_global[n.index()];
        let child = self.topo.children_of(owner).find(|c| {
            self.sessions[c.id().index()].is_some() && c.attachment().map(|(b, _)| b) == Some(g)
        })?;
        for &(b2, up2) in child.backup_attachments() {
            let l = graph.link_between(b2, up2)?;
            if !scenario.link_usable(graph, l)
                || !scenario.node_usable(b2)
                || !scenario.node_usable(up2)
            {
                continue;
            }
            // Reach the backup's parent attachment from the owner session's
            // root without touching the failed component.
            let up2_local = session.to_local[up2.index()]?;
            let path = dijkstra::shortest_path_constrained(
                &session.graph,
                session.tree.source(),
                up2_local,
                Constraints::avoiding_failures(local_scenario),
            )?;
            // The dead agent's wire plan walks the corridor from its own
            // side: child-domain leg to the backup border, the backup
            // gateway, then the owner-domain leg reversed (up2 → root). The
            // graft merges at the first live on-tree relay, so detour
            // search still never left the two involved domains.
            let child_session = self.sessions[child.id().index()].as_ref()?;
            let child_scenario = child_session.localize_scenario(graph, scenario);
            let child_leg = dijkstra::shortest_path_constrained(
                &child_session.graph,
                child_session.to_local[g.index()]?,
                child_session.to_local[b2.index()]?,
                Constraints::avoiding_failures(&child_scenario),
            )?;
            let mut wire_path: Vec<NodeId> = child_leg
                .nodes()
                .iter()
                .map(|ln| child_session.to_global[ln.index()])
                .collect();
            wire_path.extend(
                path.nodes()
                    .iter()
                    .rev()
                    .map(|ln| session.to_global[ln.index()]),
            );
            let wire_delay = Path::new(wire_path.clone()).delay(graph);
            let mut global_path: Vec<NodeId> = path
                .nodes()
                .iter()
                .map(|ln| session.to_global[ln.index()])
                .collect();
            let dist = path.delay(&session.graph) + graph.link(l).delay();
            global_path.push(b2);
            return Some((
                AgentElection {
                    domain: child.id(),
                    old_agent: g,
                    new_agent: b2,
                    parent_attach: up2,
                },
                global_path,
                dist,
                WirePlan {
                    member: g,
                    path: wire_path,
                    delay_ms: wire_delay,
                },
            ));
        }
        None
    }
}

/// A 2-level hierarchical SMRP session over a transit-stub topology — the
/// instantiation the paper evaluates.
///
/// Since the N-level generalization landed this is a thin wrapper over
/// [`NLevelSession`] on [`NLevelTopology::from_transit_stub`]; the
/// `hierarchy_differential` test pins the wrapper to the original 2-level
/// engine's behavior case-for-case.
#[derive(Debug, Clone)]
pub struct HierarchicalSession<'t> {
    topo: &'t TransitStubTopology,
    inner: NLevelSession,
    members: Vec<NodeId>,
}

impl<'t> HierarchicalSession<'t> {
    /// Builds the hierarchy: per-stub SMRP sessions rooted at each stub's
    /// agent, plus a transit-level session connecting the active agents.
    ///
    /// `source` and every member must live in stub domains.
    ///
    /// # Errors
    ///
    /// Fails if the source is not inside a stub domain, or if tree
    /// construction fails.
    pub fn build(
        topo: &'t TransitStubTopology,
        source: NodeId,
        members: &[NodeId],
        config: SmrpConfig,
    ) -> Result<Self, SmrpError> {
        let transit_id = topo.transit_domain().id();
        if topo.domain_of(source) == transit_id {
            return Err(SmrpError::InvalidConfig {
                name: "source",
                reason: "the source must live in a stub domain",
            });
        }
        // Transit-domain members were silently ignored by the 2-level
        // engine; keep that contract.
        let stub_members: Vec<NodeId> = members
            .iter()
            .copied()
            .filter(|&m| topo.domain_of(m) != transit_id)
            .collect();
        let nlevel = NLevelTopology::from_transit_stub(topo);
        let inner = NLevelSession::build(&nlevel, source, &stub_members, config)?;
        Ok(HierarchicalSession {
            topo,
            inner,
            members: members.to_vec(),
        })
    }

    /// The real multicast source.
    pub fn source(&self) -> NodeId {
        self.inner.source()
    }

    /// All members.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Attributes a link failure to its owning recovery domain.
    pub fn domain_of_link(&self, link: LinkId) -> FailureScope {
        let owner = self.inner.owning_domain(link);
        if owner == self.topo.transit_domain().id() {
            FailureScope::Transit
        } else {
            FailureScope::Stub(owner)
        }
    }

    /// Recovers from a single link failure, confining the repair to the
    /// owning recovery domain (the paper's Figure 6 walk-through).
    ///
    /// # Errors
    ///
    /// Returns an error message when a fragment cannot be repaired inside
    /// its domain (the domain's subgraph offers no detour).
    pub fn recover(&self, link: LinkId) -> Result<HierarchicalRecovery, String> {
        let rec = self.inner.recover(link)?;
        let scope = if rec.owner == self.topo.transit_domain().id() {
            FailureScope::Transit
        } else {
            FailureScope::Stub(rec.owner)
        };
        Ok(HierarchicalRecovery {
            scope,
            affected_members: rec.affected_members,
            restoration_paths: rec.restoration_paths,
            recovery_distance: rec.recovery_distance,
            domains_involved: rec.domains_involved,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smrp_net::transit_stub::TransitStubConfig;

    fn topo() -> TransitStubTopology {
        TransitStubConfig::new()
            .transit_nodes(3)
            .stubs_per_transit_node(2)
            .stub_nodes(6)
            .extra_edge_prob(0.5)
            .seed(7)
            .generate()
            .unwrap()
    }

    /// Picks a source and members spread over several stub domains.
    fn pick_members(t: &TransitStubTopology) -> (NodeId, Vec<NodeId>) {
        let stubs: Vec<_> = t.stub_domains().collect();
        let source = stubs[0].nodes()[1];
        let members = vec![
            stubs[0].nodes()[2],
            stubs[1].nodes()[0],
            stubs[1].nodes()[3],
            stubs[2].nodes()[4],
        ];
        (source, members)
    }

    #[test]
    fn builds_sessions_for_active_domains_only() {
        let t = topo();
        let (source, members) = pick_members(&t);
        let h = HierarchicalSession::build(&t, source, &members, SmrpConfig::default()).unwrap();
        // Three stub domains host the source or members, plus the transit
        // session at the root.
        assert_eq!(h.inner.active_domains(), 4);
        assert_eq!(h.members().len(), 4);
    }

    #[test]
    fn transit_source_is_rejected() {
        let t = topo();
        let transit_node = t.transit_domain().nodes()[0];
        let err = HierarchicalSession::build(&t, transit_node, &[], SmrpConfig::default());
        assert!(err.is_err());
    }

    #[test]
    fn link_attribution_matches_domains() {
        let t = topo();
        let (source, members) = pick_members(&t);
        let h = HierarchicalSession::build(&t, source, &members, SmrpConfig::default()).unwrap();
        let g = t.graph();
        for l in g.link_ids() {
            let link = g.link(l);
            let scope = h.domain_of_link(l);
            let same_stub = t.domain_of(link.a()) == t.domain_of(link.b())
                && t.domain_of(link.a()) != t.transit_domain().id();
            match scope {
                FailureScope::Stub(d) => {
                    assert!(same_stub);
                    assert_eq!(d, t.domain_of(link.a()));
                }
                FailureScope::Transit => assert!(!same_stub),
            }
        }
    }

    #[test]
    fn stub_failure_is_confined_to_one_domain() {
        let t = topo();
        let (source, members) = pick_members(&t);
        let h = HierarchicalSession::build(&t, source, &members, SmrpConfig::default()).unwrap();

        // Find a stub-internal tree link in a member-hosting domain.
        let stubs: Vec<_> = t.stub_domains().collect();
        let target_domain = stubs[1].id();
        let sess = h.inner.sessions[target_domain.index()].as_ref().unwrap();
        let mut candidate = None;
        for n in sess.tree.on_tree_nodes() {
            if let Some(p) = sess.tree.parent(n) {
                let a = sess.to_global[n.index()];
                let b = sess.to_global[p.index()];
                candidate = t.graph().link_between(a, b);
                if candidate.is_some() {
                    break;
                }
            }
        }
        let link = candidate.expect("member domain has tree links");
        let rec = h.recover(link).unwrap();
        assert_eq!(rec.scope, FailureScope::Stub(target_domain));
        assert!(rec.domains_involved <= 1);
        // Affected members all live in the failed domain.
        for m in &rec.affected_members {
            assert_eq!(t.domain_of(*m), target_domain);
        }
        // Restoration paths stay inside the domain.
        for path in &rec.restoration_paths {
            for n in path {
                assert_eq!(t.domain_of(*n), target_domain);
            }
        }
    }

    #[test]
    fn off_tree_failure_affects_nobody() {
        let t = topo();
        let (source, members) = pick_members(&t);
        let h = HierarchicalSession::build(&t, source, &members, SmrpConfig::default()).unwrap();
        // A link inside a memberless stub domain cannot affect the session.
        let stubs: Vec<_> = t.stub_domains().collect();
        let empty = stubs
            .iter()
            .find(|s| {
                !members.iter().any(|m| t.domain_of(*m) == s.id()) && t.domain_of(source) != s.id()
            })
            .expect("some stub is empty");
        let a = empty.nodes()[0];
        let link = t.graph().adjacency(a).iter().map(|&(_, l)| l).find(|&l| {
            let lk = t.graph().link(l);
            t.domain_of(lk.a()) == empty.id() && t.domain_of(lk.b()) == empty.id()
        });
        if let Some(link) = link {
            let rec = h.recover(link).unwrap();
            assert!(rec.affected_members.is_empty());
            assert_eq!(rec.domains_involved, 0);
        }
    }

    #[test]
    fn transit_failure_is_handled_at_level_zero() {
        let t = topo();
        let (source, members) = pick_members(&t);
        let h = HierarchicalSession::build(&t, source, &members, SmrpConfig::default()).unwrap();
        // Fail a transit tree link used by some agent.
        let root = t.transit_domain().id();
        let sess = h.inner.sessions[root.index()].as_ref().unwrap();
        let mut candidate = None;
        for n in sess.tree.on_tree_nodes() {
            if let Some(p) = sess.tree.parent(n) {
                let a = sess.to_global[n.index()];
                let b = sess.to_global[p.index()];
                candidate = t.graph().link_between(a, b);
                if candidate.is_some() {
                    break;
                }
            }
        }
        let link = candidate.expect("transit session has tree links");
        let rec = h.recover(link);
        match rec {
            Ok(r) => {
                assert_eq!(r.scope, FailureScope::Transit);
                // Repaired inside the transit domain only.
                assert!(r.domains_involved <= 1);
            }
            Err(msg) => {
                // Sparse transit domains may offer no detour; the error
                // must say so explicitly.
                assert!(msg.contains("cannot recover"), "{msg}");
            }
        }
    }

    mod nlevel {
        use super::super::*;
        use smrp_net::nlevel::NLevelConfig;

        fn topo() -> NLevelTopology {
            NLevelConfig::new(3)
                .level(2, 5)
                .level(2, 4)
                .extra_edge_prob(0.5)
                .seed(21)
                .generate()
                .unwrap()
        }

        /// Picks a source and members spread over leaf domains with
        /// *distinct* level-1 parents, so traffic must cross the core.
        fn pick(t: &NLevelTopology) -> (NodeId, Vec<NodeId>) {
            let leaves: Vec<_> = t.leaf_domains().collect();
            let source = leaves[0].nodes()[0];
            let source_parent = leaves[0].parent();
            let far: Vec<_> = leaves
                .iter()
                .filter(|l| l.parent() != source_parent)
                .take(2)
                .collect();
            let members = vec![
                leaves[0].nodes()[2],
                far[0].nodes()[1],
                far[1].nodes()[0],
                far[1].nodes()[3],
            ];
            (source, members)
        }

        #[test]
        fn builds_sessions_along_active_chains_only() {
            let t = topo();
            let (source, members) = pick(&t);
            let h = NLevelSession::build(&t, source, &members, SmrpConfig::default()).unwrap();
            // Active: the three leaf domains, their distinct parents and
            // the root — and nothing else.
            let mut expected: Vec<DomainId> = Vec::new();
            for &n in members.iter().chain([source].iter()) {
                for a in t.ancestry(t.domain_of(n)) {
                    if !expected.contains(&a) {
                        expected.push(a);
                    }
                }
            }
            assert_eq!(h.active_domains(), expected.len());
            assert_eq!(h.active_domain_ids().len(), expected.len());
        }

        #[test]
        fn every_link_has_an_owner_and_recovery_is_confined() {
            let t = topo();
            let (source, members) = pick(&t);
            let h = NLevelSession::build(&t, source, &members, SmrpConfig::default()).unwrap();
            let mut repaired = 0;
            let mut confined = 0;
            for link in t.graph().link_ids() {
                let owner = h.owning_domain(link);
                // Owner must contain at least one endpoint.
                let l = t.graph().link(link);
                let dom = &t.domains()[owner.index()];
                assert!(dom.contains(l.a()) || dom.contains(l.b()));
                if let Ok(rec) = h.recover(link) {
                    if rec.domains_involved > 0 {
                        repaired += 1;
                        confined += usize::from(rec.domains_involved == 1);
                        // Restoration paths stay inside the owning domain's
                        // subgraph: every hop is a domain node or an
                        // attached child agent.
                        for path in &rec.restoration_paths {
                            for n in path {
                                let nd = t.domain_of(*n);
                                let ok =
                                    nd == owner || t.domains()[nd.index()].parent() == Some(owner);
                                assert!(ok, "restoration hop {n} escaped domain {owner}");
                            }
                        }
                    }
                }
            }
            assert!(repaired > 0, "no failures were repairable");
            assert_eq!(repaired, confined, "a repair crossed domain boundaries");
        }

        #[test]
        fn source_domain_session_is_rooted_at_the_real_source() {
            let t = topo();
            let (source, members) = pick(&t);
            let h = NLevelSession::build(&t, source, &members, SmrpConfig::default()).unwrap();
            let sd = t.domain_of(source);
            assert_eq!(h.domain_root(sd), Some(source));
        }

        #[test]
        fn three_levels_are_wired_through_agents() {
            let t = topo();
            let (source, members) = pick(&t);
            let h = NLevelSession::build(&t, source, &members, SmrpConfig::default()).unwrap();
            // The root domain's session must include at least one agent
            // member (a level-1 border) so traffic crosses the core.
            let root = t.root().id();
            let sess = h.sessions[root.index()].as_ref().unwrap();
            assert!(sess.tree.member_count() >= 1);
        }

        #[test]
        fn populations_weight_agents_up_the_chain() {
            let t = NLevelConfig::new(3)
                .level(2, 5)
                .level(2, 4)
                .extra_edge_prob(0.5)
                .seed(21)
                .population(100_000)
                .generate()
                .unwrap();
            let (source, members) = pick(&t);
            let h = NLevelSession::build(&t, source, &members, SmrpConfig::default()).unwrap();
            assert_eq!(
                h.total_population(),
                members.len() as u64 + t.total_population()
            );
            // The root session's agents carry the populations below them:
            // the sum of member weights at the root equals every receiver
            // served outside the source's level-1 branch... at minimum, the
            // root tree's population is far larger than its member count.
            let root = t.root().id();
            let weighted = h.domain_members_global(root).unwrap();
            let total: u64 = weighted.iter().map(|&(_, w)| u64::from(w)).sum();
            assert!(
                total > 10_000,
                "root agents carry aggregated populations, got {total}"
            );
            // And a leaf session carries its own population directly.
            let p = &t.populations()[0];
            let leaf_members = h.domain_members_global(p.domain);
            if let Some(lm) = leaf_members {
                if let Some(&(_, w)) = lm.iter().find(|&&(n, _)| n == p.node) {
                    assert!(w >= p.receivers);
                }
            }
        }

        #[test]
        fn domain_trees_reexport_to_global_coordinates() {
            let t = topo();
            let (source, members) = pick(&t);
            let h = NLevelSession::build(&t, source, &members, SmrpConfig::default()).unwrap();
            for d in h.active_domain_ids() {
                let tree = h.domain_tree_global(d).expect("active domain exports");
                tree.validate(t.graph()).expect("exported tree validates");
                assert_eq!(Some(tree.source()), h.domain_root(d));
                let want = h.domain_members_global(d).unwrap();
                for (m, w) in want {
                    assert!(tree.is_member(m));
                    assert_eq!(tree.member_weight(m), w);
                }
            }
        }

        #[test]
        fn gateway_cut_elects_backup_agent_when_available() {
            let t = NLevelConfig::new(3)
                .level(2, 5)
                .level(2, 4)
                .extra_edge_prob(0.5)
                .seed(21)
                .redundant_gateway_prob(1.0)
                .generate()
                .unwrap();
            let (source, members) = pick(&t);
            let h = NLevelSession::build(&t, source, &members, SmrpConfig::default()).unwrap();
            // Cut the primary gateway of a member-hosting leaf off the
            // source chain.
            let md = t.domain_of(members[1]);
            let dom = &t.domains()[md.index()];
            let (border, up) = dom.attachment().unwrap();
            let link = t.graph().link_between(border, up).unwrap();
            let owner = h.owning_domain(link);
            assert_eq!(Some(owner), dom.parent());
            let rec = h.recover(link).expect("backup gateway saves the day");
            assert_eq!(rec.owner, owner);
            assert_eq!(rec.elections.len(), 1, "exactly one election");
            let e = rec.elections[0];
            assert_eq!(e.domain, md);
            assert_eq!(e.old_agent, border);
            let backups = dom.backup_attachments();
            assert!(backups.contains(&(e.new_agent, e.parent_attach)));
            assert_eq!(rec.domains_involved, 2);
            // The restoration path ends at the new agent via the parent
            // attachment.
            let last = rec.restoration_paths.last().unwrap();
            assert_eq!(*last.last().unwrap(), e.new_agent);
            assert_eq!(last[last.len() - 2], e.parent_attach);
            assert!(!rec.affected_members.is_empty());
        }

        #[test]
        fn gateway_cut_without_backup_stays_an_error() {
            let t = topo(); // no redundant gateways
            let (source, members) = pick(&t);
            let h = NLevelSession::build(&t, source, &members, SmrpConfig::default()).unwrap();
            let md = t.domain_of(members[1]);
            let dom = &t.domains()[md.index()];
            let (border, up) = dom.attachment().unwrap();
            let link = t.graph().link_between(border, up).unwrap();
            let err = h.recover(link).unwrap_err();
            assert!(err.contains("cannot recover"), "{err}");
        }

        #[test]
        fn affected_population_counts_receivers_under_failed_subtrees() {
            let t = NLevelConfig::new(3)
                .level(2, 5)
                .level(2, 4)
                .extra_edge_prob(0.5)
                .seed(21)
                .population(480_000)
                .redundant_gateway_prob(1.0)
                .generate()
                .unwrap();
            let (source, members) = pick(&t);
            let h = NLevelSession::build(&t, source, &members, SmrpConfig::default()).unwrap();
            // Cut a leaf's gateway: the leaf's whole population (plus its
            // real members) loses service until the election completes.
            let md = t.domain_of(members[1]);
            let dom = &t.domains()[md.index()];
            let (border, up) = dom.attachment().unwrap();
            let link = t.graph().link_between(border, up).unwrap();
            let rec = h.recover(link).expect("backup gateway repairs");
            let pop_under: u64 = t
                .populations()
                .iter()
                .filter(|p| t.ancestry(p.domain).contains(&md))
                .map(|p| u64::from(p.receivers))
                .sum();
            assert!(pop_under > 0, "leaf has an aggregated population");
            assert!(
                rec.affected_population >= pop_under,
                "affected population {} must cover the subtree's {} receivers",
                rec.affected_population,
                pop_under
            );
        }
    }
}
