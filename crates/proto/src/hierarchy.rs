//! The hierarchical recovery architecture of §3.3.3.
//!
//! A 2-level instantiation of the paper's N-level model on a transit-stub
//! topology: members are clustered into stub (level-1) *recovery domains*,
//! each served by an **agent** — the domain's border node — acting as the
//! multicast source for members inside the domain. The agents themselves
//! form a level-0 session across the transit domain, rooted at the agent of
//! the domain that hosts the real source (which relays the source's data).
//!
//! The payoff is failure *confinement*: a broken component is attributed to
//! the recovery domain that owns it ([`HierarchicalSession::domain_of_link`])
//! and the repair — a local detour computed inside that domain's subgraph —
//! never touches the rest of the tree. [`HierarchicalSession::recover`]
//! returns both the restoration path (in global node ids) and the set of
//! domains that had to participate, which the `hierarchy` experiment
//! compares against flat recovery.

use smrp_core::recovery::{self, DetourKind};
use smrp_core::{MulticastTree, SmrpConfig, SmrpError, SmrpSession};
use smrp_net::transit_stub::{DomainId, TransitStubTopology};
use smrp_net::{FailureScenario, Graph, LinkId, NodeId};

/// Where a failure landed in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureScope {
    /// Inside one stub recovery domain.
    Stub(DomainId),
    /// In the transit domain or on a stub-transit gateway link.
    Transit,
}

/// One level-1 or level-0 session: a tree over a domain subgraph.
#[derive(Debug, Clone)]
struct DomainSession {
    /// Induced subgraph of the domain (plus, for the transit session, the
    /// attached agents).
    graph: Graph,
    /// Local-to-global node id mapping.
    to_global: Vec<NodeId>,
    /// Global-to-local (dense, indexed by global id).
    to_local: Vec<Option<NodeId>>,
    /// The multicast tree within the domain, rooted at the agent.
    tree: MulticastTree,
}

impl DomainSession {
    fn build(
        parent: &Graph,
        nodes: &[NodeId],
        source_global: NodeId,
        members_global: &[NodeId],
        config: SmrpConfig,
    ) -> Result<Self, SmrpError> {
        let (graph, to_global) = parent.induced_subgraph(nodes);
        let mut to_local = vec![None; parent.node_count()];
        for (local_idx, &global) in to_global.iter().enumerate() {
            to_local[global.index()] = Some(NodeId::new(local_idx));
        }
        let source =
            to_local[source_global.index()].ok_or(SmrpError::UnknownNode(source_global))?;
        let mut sess = SmrpSession::new(&graph, source, config)?;
        for &m in members_global {
            let local = to_local[m.index()].ok_or(SmrpError::UnknownNode(m))?;
            if local != source {
                sess.join(local)?;
            }
        }
        let tree = sess.tree().clone();
        Ok(DomainSession {
            graph,
            to_global,
            to_local,
            tree,
        })
    }

    fn localize_scenario(&self, parent: &Graph, scenario: &FailureScenario) -> FailureScenario {
        let mut local = FailureScenario::none();
        for n in scenario.failed_nodes() {
            if let Some(l) = self.to_local[n.index()] {
                local.fail_node(l);
            }
        }
        for lk in scenario.failed_links() {
            let link = parent.link(lk);
            let (Some(a), Some(b)) = (
                self.to_local[link.a().index()],
                self.to_local[link.b().index()],
            ) else {
                continue;
            };
            if let Some(local_link) = self.graph.link_between(a, b) {
                local.fail_link(local_link);
            }
        }
        local
    }
}

/// Outcome of a confined recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchicalRecovery {
    /// Which level handled the failure.
    pub scope: FailureScope,
    /// Members (global ids) that lost service.
    pub affected_members: Vec<NodeId>,
    /// Restoration paths in global node ids, one per disconnected fragment
    /// root inside the owning domain.
    pub restoration_paths: Vec<Vec<NodeId>>,
    /// Total recovery distance (sum over restoration paths).
    pub recovery_distance: f64,
    /// Number of domains whose state was touched by the repair (always 1
    /// here — the point of the architecture).
    pub domains_involved: usize,
}

/// A 2-level hierarchical SMRP session over a transit-stub topology.
#[derive(Debug, Clone)]
pub struct HierarchicalSession<'t> {
    topo: &'t TransitStubTopology,
    /// Stub sessions indexed by domain id (None for memberless stubs and
    /// for the transit slot).
    stubs: Vec<Option<DomainSession>>,
    transit: DomainSession,
    source: NodeId,
    members: Vec<NodeId>,
}

impl<'t> HierarchicalSession<'t> {
    /// Builds the hierarchy: per-stub SMRP sessions rooted at each stub's
    /// agent, plus a transit-level session connecting the active agents.
    ///
    /// `source` and every member must live in stub domains.
    ///
    /// # Errors
    ///
    /// Fails if the source or a member is not inside a stub domain, or if
    /// tree construction fails.
    pub fn build(
        topo: &'t TransitStubTopology,
        source: NodeId,
        members: &[NodeId],
        config: SmrpConfig,
    ) -> Result<Self, SmrpError> {
        let graph = topo.graph();
        let source_domain = topo.domain_of(source);
        if source_domain == topo.transit_domain().id() {
            return Err(SmrpError::InvalidConfig {
                name: "source",
                reason: "the source must live in a stub domain",
            });
        }

        let mut stubs: Vec<Option<DomainSession>> = vec![None; topo.domains().len()];
        let mut active_agents: Vec<(DomainId, NodeId)> = Vec::new();

        for stub in topo.stub_domains() {
            let mut domain_members: Vec<NodeId> = members
                .iter()
                .copied()
                .filter(|m| topo.domain_of(*m) == stub.id())
                .collect();
            let hosts_source = stub.id() == source_domain;
            if domain_members.is_empty() && !hosts_source {
                continue;
            }
            let (border, _) = stub.attachment().expect("stub domains have attachments");
            if hosts_source {
                // Inside the source's domain, the agent is a *member*
                // relaying to the rest of the hierarchy (paper: "the agent
                // acts as a multicast member"), and the session is rooted
                // at the real source.
                if !domain_members.contains(&border) && border != source {
                    domain_members.push(border);
                }
                let sess =
                    DomainSession::build(graph, stub.nodes(), source, &domain_members, config)?;
                stubs[stub.id().index()] = Some(sess);
            } else {
                let sess =
                    DomainSession::build(graph, stub.nodes(), border, &domain_members, config)?;
                stubs[stub.id().index()] = Some(sess);
            }
            active_agents.push((stub.id(), border));
        }

        // Transit-level session: transit nodes plus the active agents;
        // rooted at the source domain's agent.
        let (source_agent, _) = topo.domains()[source_domain.index()]
            .attachment()
            .expect("source domain is a stub");
        let mut transit_nodes: Vec<NodeId> = topo.transit_domain().nodes().to_vec();
        for &(_, agent) in &active_agents {
            transit_nodes.push(agent);
        }
        let transit_members: Vec<NodeId> = active_agents
            .iter()
            .map(|&(_, a)| a)
            .filter(|&a| a != source_agent)
            .collect();
        let transit = DomainSession::build(
            graph,
            &transit_nodes,
            source_agent,
            &transit_members,
            config,
        )?;

        Ok(HierarchicalSession {
            topo,
            stubs,
            transit,
            source,
            members: members.to_vec(),
        })
    }

    /// The real multicast source.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// All members.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Attributes a link failure to its owning recovery domain.
    pub fn domain_of_link(&self, link: LinkId) -> FailureScope {
        let l = self.topo.graph().link(link);
        let da = self.topo.domain_of(l.a());
        let db = self.topo.domain_of(l.b());
        let transit_id = self.topo.transit_domain().id();
        if da == db && da != transit_id {
            FailureScope::Stub(da)
        } else {
            FailureScope::Transit
        }
    }

    /// Members (global ids) served through `domain` — those inside it, or,
    /// for the transit scope, members of every stub whose agent is cut off.
    fn members_in_stub(&self, domain: DomainId) -> Vec<NodeId> {
        self.members
            .iter()
            .copied()
            .filter(|m| self.topo.domain_of(*m) == domain)
            .collect()
    }

    /// Recovers from a single link failure, confining the repair to the
    /// owning recovery domain (the paper's Figure 6 walk-through).
    ///
    /// # Errors
    ///
    /// Returns an error message when a fragment cannot be repaired inside
    /// its domain (the domain's subgraph offers no detour).
    pub fn recover(&self, link: LinkId) -> Result<HierarchicalRecovery, String> {
        let scope = self.domain_of_link(link);
        let graph = self.topo.graph();
        let scenario = FailureScenario::link(link);

        let (session, affected_members) = match scope {
            FailureScope::Stub(d) => {
                let Some(sess) = self.stubs[d.index()].as_ref() else {
                    // The failure landed in a domain with no session state:
                    // nobody is affected and nothing needs repair.
                    return Ok(HierarchicalRecovery {
                        scope,
                        affected_members: Vec::new(),
                        restoration_paths: Vec::new(),
                        recovery_distance: 0.0,
                        domains_involved: 0,
                    });
                };
                (sess, self.members_in_stub(d))
            }
            FailureScope::Transit => {
                // Affected members: every stub whose agent loses the
                // transit feed.
                (&self.transit, Vec::new())
            }
        };

        let local_scenario = session.localize_scenario(graph, &scenario);
        if local_scenario.is_empty() {
            // The failed component is not part of this domain's subgraph:
            // nothing on the tree is affected.
            return Ok(HierarchicalRecovery {
                scope,
                affected_members: Vec::new(),
                restoration_paths: Vec::new(),
                recovery_distance: 0.0,
                domains_involved: 0,
            });
        }

        // Fragment roots within the domain tree.
        let mut paths = Vec::new();
        let mut total_rd = 0.0;
        let mut any_affected = false;
        for n in session.tree.on_tree_nodes() {
            let Some(p) = session.tree.parent(n) else {
                continue;
            };
            let Some(l) = session.graph.link_between(n, p) else {
                continue;
            };
            if local_scenario.link_usable(&session.graph, l) {
                continue;
            }
            any_affected = true;
            let rec = recovery::recover(
                &session.graph,
                &session.tree,
                &local_scenario,
                n,
                DetourKind::Local,
            )
            .map_err(|e| format!("fragment at {n} cannot recover inside its domain: {e}"))?;
            total_rd += rec.recovery_distance();
            paths.push(
                rec.restoration_path()
                    .nodes()
                    .iter()
                    .map(|ln| session.to_global[ln.index()])
                    .collect::<Vec<NodeId>>(),
            );
        }

        let affected = if any_affected {
            match scope {
                FailureScope::Stub(_) => affected_members,
                FailureScope::Transit => {
                    // Every member behind an agent that was in an affected
                    // fragment. Conservative: all members outside the
                    // source domain whose agent's transit path used the
                    // link.
                    let mut out = Vec::new();
                    let local = &self.transit;
                    let affected_local =
                        recovery::affected_members(&local.graph, &local.tree, &local_scenario);
                    for a in affected_local {
                        let agent_global = local.to_global[a.index()];
                        let d = self.topo.domain_of(agent_global);
                        out.extend(self.members_in_stub(d));
                    }
                    out
                }
            }
        } else {
            Vec::new()
        };

        Ok(HierarchicalRecovery {
            scope,
            affected_members: affected,
            restoration_paths: paths,
            recovery_distance: total_rd,
            domains_involved: usize::from(any_affected),
        })
    }
}

/// An N-level hierarchical SMRP session (§3.3.3's generalization) over an
/// [`NLevelTopology`].
///
/// Each *active* domain — one hosting the source, hosting members, or
/// lying on the path between them — runs its own SMRP session: rooted at
/// the real source in the source's domain, at the upward-relaying agent on
/// the source's ancestry chain, and at the domain's border agent
/// everywhere else. Child-domain agents appear as members of their parent
/// domain's session, wiring the levels together exactly as Figure 6
/// sketches for two levels.
#[derive(Debug, Clone)]
pub struct NLevelSession<'t> {
    topo: &'t NLevelTopology,
    sessions: Vec<Option<DomainSession>>,
    source: NodeId,
    members: Vec<NodeId>,
}

use smrp_net::nlevel::NLevelTopology;

impl<'t> NLevelSession<'t> {
    /// Builds the hierarchy of per-domain sessions.
    ///
    /// # Errors
    ///
    /// Fails if tree construction fails inside any active domain.
    pub fn build(
        topo: &'t NLevelTopology,
        source: NodeId,
        members: &[NodeId],
        config: SmrpConfig,
    ) -> Result<Self, SmrpError> {
        let graph = topo.graph();
        let n_domains = topo.domains().len();

        // Mark active domains: hosts of the source/members plus all their
        // ancestors (traffic transits through them).
        let mut active = vec![false; n_domains];
        let mark = |active: &mut Vec<bool>, d: DomainId| {
            for a in topo.ancestry(d) {
                active[a.index()] = true;
            }
        };
        mark(&mut active, topo.domain_of(source));
        for &m in members {
            mark(&mut active, topo.domain_of(m));
        }

        // The source's ancestry chain (domain ids), for root selection.
        let source_chain = topo.ancestry(topo.domain_of(source));

        let mut sessions: Vec<Option<DomainSession>> = vec![None; n_domains];
        for domain in topo.domains() {
            if !active[domain.id().index()] {
                continue;
            }
            let on_source_chain = source_chain.contains(&domain.id());

            // Subgraph: the domain's nodes plus the borders of its active
            // children (their gateway links are induced automatically).
            let mut nodes: Vec<NodeId> = domain.nodes().to_vec();
            let mut child_agents: Vec<NodeId> = Vec::new();
            let mut source_child_agent = None;
            for child in topo.children_of(domain.id()) {
                if !active[child.id().index()] {
                    continue;
                }
                let (border, _) = child.attachment().expect("children have attachments");
                nodes.push(border);
                if source_chain.contains(&child.id()) {
                    source_child_agent = Some(border);
                } else {
                    child_agents.push(border);
                }
            }

            // Local root: the real source, the agent relaying it upward,
            // or this domain's border.
            let local_root = if domain.contains(source) {
                source
            } else if let Some(agent) = source_child_agent {
                agent
            } else {
                domain
                    .attachment()
                    .map(|(border, _)| border)
                    .expect("non-root domains have borders")
            };

            // Local members: real members here, active child agents, and —
            // on the source chain below the root domain — this domain's own
            // border so data keeps flowing upward.
            let mut local_members: Vec<NodeId> = members
                .iter()
                .copied()
                .filter(|m| domain.contains(*m))
                .collect();
            local_members.extend(child_agents);
            if on_source_chain && domain.parent().is_some() {
                let (border, _) = domain.attachment().expect("non-root domain");
                if border != local_root && !local_members.contains(&border) {
                    local_members.push(border);
                }
            }
            local_members.retain(|&m| m != local_root);

            sessions[domain.id().index()] = Some(DomainSession::build(
                graph,
                &nodes,
                local_root,
                &local_members,
                config,
            )?);
        }

        Ok(NLevelSession {
            topo,
            sessions,
            source,
            members: members.to_vec(),
        })
    }

    /// The real multicast source.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// All members.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of domains running a session.
    pub fn active_domains(&self) -> usize {
        self.sessions.iter().flatten().count()
    }

    /// Attributes a link failure to the domain that owns it: the common
    /// domain of its endpoints, or — for a gateway link — the parent-side
    /// domain.
    pub fn owning_domain(&self, link: LinkId) -> DomainId {
        let l = self.topo.graph().link(link);
        let da = self.topo.domain_of(l.a());
        let db = self.topo.domain_of(l.b());
        if da == db {
            return da;
        }
        // Gateway: one endpoint's domain is the parent of the other's.
        let parent_a = self.topo.domains()[da.index()].parent();
        if parent_a == Some(db) {
            db
        } else {
            da
        }
    }

    /// Recovers from a single link failure inside its owning domain.
    ///
    /// # Errors
    ///
    /// Returns a message when the owning domain's subgraph offers no
    /// detour.
    pub fn recover(&self, link: LinkId) -> Result<HierarchicalRecovery, String> {
        let owner = self.owning_domain(link);
        let graph = self.topo.graph();
        let scenario = FailureScenario::link(link);
        let Some(session) = self.sessions[owner.index()].as_ref() else {
            return Ok(HierarchicalRecovery {
                scope: FailureScope::Stub(owner),
                affected_members: Vec::new(),
                restoration_paths: Vec::new(),
                recovery_distance: 0.0,
                domains_involved: 0,
            });
        };
        let local_scenario = session.localize_scenario(graph, &scenario);
        if local_scenario.is_empty() {
            return Ok(HierarchicalRecovery {
                scope: FailureScope::Stub(owner),
                affected_members: Vec::new(),
                restoration_paths: Vec::new(),
                recovery_distance: 0.0,
                domains_involved: 0,
            });
        }
        let mut paths = Vec::new();
        let mut total_rd = 0.0;
        let mut any_affected = false;
        for n in session.tree.on_tree_nodes() {
            let Some(p) = session.tree.parent(n) else {
                continue;
            };
            let Some(l) = session.graph.link_between(n, p) else {
                continue;
            };
            if local_scenario.link_usable(&session.graph, l) {
                continue;
            }
            any_affected = true;
            let rec = recovery::recover(
                &session.graph,
                &session.tree,
                &local_scenario,
                n,
                DetourKind::Local,
            )
            .map_err(|e| format!("fragment at {n} cannot recover inside domain {owner}: {e}"))?;
            total_rd += rec.recovery_distance();
            paths.push(
                rec.restoration_path()
                    .nodes()
                    .iter()
                    .map(|ln| session.to_global[ln.index()])
                    .collect::<Vec<NodeId>>(),
            );
        }
        // Affected members: those whose domain's chain to the source runs
        // through an affected agent — conservatively, members of the
        // owning domain's subtree of domains when the failure bit.
        let affected_members = if any_affected {
            let affected_local =
                recovery::affected_members(&session.graph, &session.tree, &local_scenario);
            let mut out: Vec<NodeId> = Vec::new();
            for a in affected_local {
                let g = session.to_global[a.index()];
                if self.members.contains(&g) {
                    out.push(g);
                } else {
                    // An agent: every member under its domain subtree.
                    let agent_domain = self.topo.domain_of(g);
                    for &m in &self.members {
                        if self
                            .topo
                            .ancestry(self.topo.domain_of(m))
                            .contains(&agent_domain)
                            && !out.contains(&m)
                        {
                            out.push(m);
                        }
                    }
                }
            }
            out
        } else {
            Vec::new()
        };
        Ok(HierarchicalRecovery {
            scope: FailureScope::Stub(owner),
            affected_members,
            restoration_paths: paths,
            recovery_distance: total_rd,
            domains_involved: usize::from(any_affected),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smrp_net::transit_stub::TransitStubConfig;

    fn topo() -> TransitStubTopology {
        TransitStubConfig::new()
            .transit_nodes(3)
            .stubs_per_transit_node(2)
            .stub_nodes(6)
            .extra_edge_prob(0.5)
            .seed(7)
            .generate()
            .unwrap()
    }

    /// Picks a source and members spread over several stub domains.
    fn pick_members(t: &TransitStubTopology) -> (NodeId, Vec<NodeId>) {
        let stubs: Vec<_> = t.stub_domains().collect();
        let source = stubs[0].nodes()[1];
        let members = vec![
            stubs[0].nodes()[2],
            stubs[1].nodes()[0],
            stubs[1].nodes()[3],
            stubs[2].nodes()[4],
        ];
        (source, members)
    }

    #[test]
    fn builds_sessions_for_active_domains_only() {
        let t = topo();
        let (source, members) = pick_members(&t);
        let h = HierarchicalSession::build(&t, source, &members, SmrpConfig::default()).unwrap();
        let active = h.stubs.iter().flatten().count();
        assert_eq!(active, 3, "three stub domains host the source or members");
        assert_eq!(h.members().len(), 4);
    }

    #[test]
    fn transit_source_is_rejected() {
        let t = topo();
        let transit_node = t.transit_domain().nodes()[0];
        let err = HierarchicalSession::build(&t, transit_node, &[], SmrpConfig::default());
        assert!(err.is_err());
    }

    #[test]
    fn link_attribution_matches_domains() {
        let t = topo();
        let (source, members) = pick_members(&t);
        let h = HierarchicalSession::build(&t, source, &members, SmrpConfig::default()).unwrap();
        let g = t.graph();
        for l in g.link_ids() {
            let link = g.link(l);
            let scope = h.domain_of_link(l);
            let same_stub = t.domain_of(link.a()) == t.domain_of(link.b())
                && t.domain_of(link.a()) != t.transit_domain().id();
            match scope {
                FailureScope::Stub(d) => {
                    assert!(same_stub);
                    assert_eq!(d, t.domain_of(link.a()));
                }
                FailureScope::Transit => assert!(!same_stub),
            }
        }
    }

    #[test]
    fn stub_failure_is_confined_to_one_domain() {
        let t = topo();
        let (source, members) = pick_members(&t);
        let h = HierarchicalSession::build(&t, source, &members, SmrpConfig::default()).unwrap();

        // Find a stub-internal tree link in a member-hosting domain.
        let stubs: Vec<_> = t.stub_domains().collect();
        let target_domain = stubs[1].id();
        let sess = h.stubs[target_domain.index()].as_ref().unwrap();
        let mut candidate = None;
        for n in sess.tree.on_tree_nodes() {
            if let Some(p) = sess.tree.parent(n) {
                let a = sess.to_global[n.index()];
                let b = sess.to_global[p.index()];
                candidate = t.graph().link_between(a, b);
                if candidate.is_some() {
                    break;
                }
            }
        }
        let link = candidate.expect("member domain has tree links");
        let rec = h.recover(link).unwrap();
        assert_eq!(rec.scope, FailureScope::Stub(target_domain));
        assert!(rec.domains_involved <= 1);
        // Affected members all live in the failed domain.
        for m in &rec.affected_members {
            assert_eq!(t.domain_of(*m), target_domain);
        }
        // Restoration paths stay inside the domain.
        for path in &rec.restoration_paths {
            for n in path {
                assert_eq!(t.domain_of(*n), target_domain);
            }
        }
    }

    #[test]
    fn off_tree_failure_affects_nobody() {
        let t = topo();
        let (source, members) = pick_members(&t);
        let h = HierarchicalSession::build(&t, source, &members, SmrpConfig::default()).unwrap();
        // A link inside a memberless stub domain cannot affect the session.
        let stubs: Vec<_> = t.stub_domains().collect();
        let empty = stubs
            .iter()
            .find(|s| {
                !members.iter().any(|m| t.domain_of(*m) == s.id()) && t.domain_of(source) != s.id()
            })
            .expect("some stub is empty");
        let a = empty.nodes()[0];
        let link = t.graph().adjacency(a).iter().map(|&(_, l)| l).find(|&l| {
            let lk = t.graph().link(l);
            t.domain_of(lk.a()) == empty.id() && t.domain_of(lk.b()) == empty.id()
        });
        if let Some(link) = link {
            let rec = h.recover(link).unwrap();
            assert!(rec.affected_members.is_empty());
            assert_eq!(rec.domains_involved, 0);
        }
    }

    mod nlevel {
        use super::super::*;
        use smrp_net::nlevel::NLevelConfig;

        fn topo() -> NLevelTopology {
            NLevelConfig::new(3)
                .level(2, 5)
                .level(2, 4)
                .extra_edge_prob(0.5)
                .seed(21)
                .generate()
                .unwrap()
        }

        /// Picks a source and members spread over leaf domains with
        /// *distinct* level-1 parents, so traffic must cross the core.
        fn pick(t: &NLevelTopology) -> (NodeId, Vec<NodeId>) {
            let leaves: Vec<_> = t.leaf_domains().collect();
            let source = leaves[0].nodes()[0];
            let source_parent = leaves[0].parent();
            let far: Vec<_> = leaves
                .iter()
                .filter(|l| l.parent() != source_parent)
                .take(2)
                .collect();
            let members = vec![
                leaves[0].nodes()[2],
                far[0].nodes()[1],
                far[1].nodes()[0],
                far[1].nodes()[3],
            ];
            (source, members)
        }

        #[test]
        fn builds_sessions_along_active_chains_only() {
            let t = topo();
            let (source, members) = pick(&t);
            let h = NLevelSession::build(&t, source, &members, SmrpConfig::default()).unwrap();
            // Active: the three leaf domains, their distinct parents and
            // the root — and nothing else.
            let mut expected: Vec<DomainId> = Vec::new();
            for &n in members.iter().chain([source].iter()) {
                for a in t.ancestry(t.domain_of(n)) {
                    if !expected.contains(&a) {
                        expected.push(a);
                    }
                }
            }
            assert_eq!(h.active_domains(), expected.len());
        }

        #[test]
        fn every_link_has_an_owner_and_recovery_is_confined() {
            let t = topo();
            let (source, members) = pick(&t);
            let h = NLevelSession::build(&t, source, &members, SmrpConfig::default()).unwrap();
            let mut repaired = 0;
            let mut confined = 0;
            for link in t.graph().link_ids() {
                let owner = h.owning_domain(link);
                // Owner must contain at least one endpoint.
                let l = t.graph().link(link);
                let dom = &t.domains()[owner.index()];
                assert!(dom.contains(l.a()) || dom.contains(l.b()));
                if let Ok(rec) = h.recover(link) {
                    if rec.domains_involved > 0 {
                        repaired += 1;
                        confined += usize::from(rec.domains_involved == 1);
                        // Restoration paths stay inside the owning domain's
                        // subgraph: every hop is a domain node or an
                        // attached child agent.
                        for path in &rec.restoration_paths {
                            for n in path {
                                let nd = t.domain_of(*n);
                                let ok =
                                    nd == owner || t.domains()[nd.index()].parent() == Some(owner);
                                assert!(ok, "restoration hop {n} escaped domain {owner}");
                            }
                        }
                    }
                }
            }
            assert!(repaired > 0, "no failures were repairable");
            assert_eq!(repaired, confined, "a repair crossed domain boundaries");
        }

        #[test]
        fn source_domain_session_is_rooted_at_the_real_source() {
            let t = topo();
            let (source, members) = pick(&t);
            let h = NLevelSession::build(&t, source, &members, SmrpConfig::default()).unwrap();
            let sd = t.domain_of(source);
            let sess = h.sessions[sd.index()].as_ref().unwrap();
            let local_root = sess.tree.source();
            assert_eq!(sess.to_global[local_root.index()], source);
        }

        #[test]
        fn three_levels_are_wired_through_agents() {
            let t = topo();
            let (source, members) = pick(&t);
            let h = NLevelSession::build(&t, source, &members, SmrpConfig::default()).unwrap();
            // The root domain's session must include at least one agent
            // member (a level-1 border) so traffic crosses the core.
            let root = t.root().id();
            let sess = h.sessions[root.index()].as_ref().unwrap();
            assert!(sess.tree.member_count() >= 1);
        }
    }

    #[test]
    fn transit_failure_is_handled_at_level_zero() {
        let t = topo();
        let (source, members) = pick_members(&t);
        let h = HierarchicalSession::build(&t, source, &members, SmrpConfig::default()).unwrap();
        // Fail a transit tree link used by some agent.
        let sess = &h.transit;
        let mut candidate = None;
        for n in sess.tree.on_tree_nodes() {
            if let Some(p) = sess.tree.parent(n) {
                let a = sess.to_global[n.index()];
                let b = sess.to_global[p.index()];
                candidate = t.graph().link_between(a, b);
                if candidate.is_some() {
                    break;
                }
            }
        }
        let link = candidate.expect("transit session has tree links");
        let rec = h.recover(link);
        match rec {
            Ok(r) => {
                assert_eq!(r.scope, FailureScope::Transit);
                // Repaired inside the transit domain only.
                assert!(r.domains_involved <= 1);
            }
            Err(msg) => {
                // Sparse transit domains may offer no detour; the error
                // must say so explicitly.
                assert!(msg.contains("cannot recover"), "{msg}");
            }
        }
    }
}
