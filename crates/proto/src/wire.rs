//! Versioned binary wire codec for SMRP control messages.
//!
//! Inside the simulator, [`GroupMsg`] values travel as Rust values; on a
//! real transport they need bytes. The codec here is hand-rolled rather
//! than derived because the format is part of the protocol's compatibility
//! surface: every frame starts with a version byte, every variant has a
//! fixed tag, and all integers are little-endian, so two daemons built
//! from different checkouts either interoperate or fail loudly with
//! [`WireError::UnknownVersion`].
//!
//! Three framings share one body encoding:
//!
//! * [`encode_msg`]/[`decode_msg`] — `[version][body]`, for transports
//!   that preserve message boundaries and carry the sender out of band;
//! * [`encode_datagram`]/[`decode_datagram`] — `[version][sender][body]`,
//!   for UDP where the protocol-level sender identity must ride in the
//!   packet (socket addresses are transport trivia, not node ids);
//! * [`write_frame`]/[`read_frame`] — `[len u32][datagram]`, for byte
//!   streams that need explicit length prefixes.
//!
//! The byte-exact fixtures in `tests/wire_snapshot.rs` pin the layout of
//! every [`ProtoMsg`] variant; changing any of them requires bumping
//! [`WIRE_VERSION`].

use std::io::{self, Read, Write};

use smrp_net::{GroupId, NodeId};

use crate::messages::{GroupMsg, ProtoMsg};

/// Current wire-format version, the first byte of every encoded message.
pub const WIRE_VERSION: u8 = 1;

/// Maximum [`ProtoMsg::Reliable`] nesting depth the decoder accepts.
///
/// The protocol itself nests exactly once (an envelope around a plain
/// control message); the bound exists so malformed or hostile input cannot
/// recurse the decoder off the stack.
pub const MAX_NESTING: usize = 4;

/// Maximum element count the decoder accepts for any length-prefixed
/// sequence. Paths are bounded by the network diameter; anything beyond
/// this is a corrupt or hostile length field, rejected before allocation.
pub const MAX_SEQ_LEN: u32 = 1 << 16;

/// Why a byte sequence failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The leading version byte is not [`WIRE_VERSION`].
    UnknownVersion(u8),
    /// A variant tag byte matched no known [`ProtoMsg`] variant.
    UnknownTag(u8),
    /// The input ended before the message did.
    Truncated,
    /// The message ended before the input did (this many bytes left over).
    TrailingBytes(usize),
    /// A length prefix exceeded [`MAX_SEQ_LEN`].
    OversizedSequence(u32),
    /// [`ProtoMsg::Reliable`] envelopes nested deeper than [`MAX_NESTING`].
    TooDeep,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnknownVersion(v) => {
                write!(f, "unknown wire version {v} (expected {WIRE_VERSION})")
            }
            WireError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            WireError::Truncated => write!(f, "truncated message"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::OversizedSequence(n) => {
                write!(f, "sequence length {n} exceeds limit {MAX_SEQ_LEN}")
            }
            WireError::TooDeep => write!(f, "reliable envelopes nested deeper than {MAX_NESTING}"),
        }
    }
}

impl std::error::Error for WireError {}

// Variant tags. Append-only: tags are wire-stable and never reassigned.
const TAG_SETUP: u8 = 0;
const TAG_LEAVE_REQ: u8 = 1;
const TAG_REFRESH: u8 = 2;
const TAG_HELLO: u8 = 3;
const TAG_DATA: u8 = 4;
const TAG_QUERY: u8 = 5;
const TAG_QUERY_RESP: u8 = 6;
const TAG_RELIABLE: u8 = 7;
const TAG_ACK: u8 = 8;

/// Encodes a group-tagged message as `[version][group][body]`.
pub fn encode_msg(msg: &GroupMsg) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.push(WIRE_VERSION);
    put_u32(&mut out, msg.group.index() as u32);
    put_proto(&mut out, &msg.inner);
    out
}

/// Decodes a message produced by [`encode_msg`], rejecting unknown
/// versions, unknown tags, truncation and trailing bytes.
pub fn decode_msg(bytes: &[u8]) -> Result<GroupMsg, WireError> {
    let mut r = Reader::new(bytes);
    r.expect_version()?;
    let msg = take_group_msg(&mut r)?;
    r.finish()?;
    Ok(msg)
}

/// Encodes a datagram as `[version][sender][group][body]` — the framing
/// UDP transports exchange, carrying the protocol-level sender identity
/// inside the packet.
pub fn encode_datagram(from: NodeId, msg: &GroupMsg) -> Vec<u8> {
    let mut out = Vec::with_capacity(20);
    out.push(WIRE_VERSION);
    put_u32(&mut out, from.index() as u32);
    put_u32(&mut out, msg.group.index() as u32);
    put_proto(&mut out, &msg.inner);
    out
}

/// Decodes a datagram produced by [`encode_datagram`].
pub fn decode_datagram(bytes: &[u8]) -> Result<(NodeId, GroupMsg), WireError> {
    let mut r = Reader::new(bytes);
    r.expect_version()?;
    let from = NodeId::new(r.take_u32()? as usize);
    let msg = take_group_msg(&mut r)?;
    r.finish()?;
    Ok((from, msg))
}

/// Writes a length-prefixed datagram (`[len u32][datagram]`) to a byte
/// stream.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_frame(w: &mut impl Write, from: NodeId, msg: &GroupMsg) -> io::Result<()> {
    let body = encode_datagram(from, msg);
    let len = u32::try_from(body.len()).expect("frame exceeds u32 length");
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&body)
}

/// Reads one length-prefixed datagram from a byte stream. Returns
/// `Ok(None)` on a clean end of stream (EOF before the first length byte).
///
/// # Errors
///
/// Propagates I/O errors; decode failures surface as
/// [`io::ErrorKind::InvalidData`] wrapping the [`WireError`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(NodeId, GroupMsg)>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_SEQ_LEN * 8 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::OversizedSequence(len),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    decode_datagram(&body)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_nodes(out: &mut Vec<u8>, nodes: &[NodeId]) {
    put_u32(out, nodes.len() as u32);
    for n in nodes {
        put_u32(out, n.index() as u32);
    }
}

fn put_proto(out: &mut Vec<u8>, msg: &ProtoMsg) {
    match msg {
        ProtoMsg::Setup { path, idx } => {
            out.push(TAG_SETUP);
            put_nodes(out, path);
            put_u32(out, *idx as u32);
        }
        ProtoMsg::LeaveReq => out.push(TAG_LEAVE_REQ),
        ProtoMsg::Refresh => out.push(TAG_REFRESH),
        ProtoMsg::Hello => out.push(TAG_HELLO),
        ProtoMsg::Data { seq } => {
            out.push(TAG_DATA);
            put_u64(out, *seq);
        }
        ProtoMsg::Query {
            origin,
            path,
            delay,
        } => {
            out.push(TAG_QUERY);
            put_u32(out, origin.index() as u32);
            put_nodes(out, path);
            put_f64(out, *delay);
        }
        ProtoMsg::QueryResp {
            approach,
            approach_delay,
            shr,
            tree_delay,
            idx,
        } => {
            out.push(TAG_QUERY_RESP);
            put_nodes(out, approach);
            put_f64(out, *approach_delay);
            put_u32(out, *shr);
            put_f64(out, *tree_delay);
            put_u32(out, *idx as u32);
        }
        ProtoMsg::Reliable { seq, base, inner } => {
            out.push(TAG_RELIABLE);
            put_u64(out, *seq);
            put_u64(out, *base);
            put_proto(out, inner);
        }
        ProtoMsg::Ack { seq } => {
            out.push(TAG_ACK);
            put_u64(out, *seq);
        }
    }
}

struct Reader<'b> {
    bytes: &'b [u8],
    pos: usize,
}

impl<'b> Reader<'b> {
    fn new(bytes: &'b [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn expect_version(&mut self) -> Result<(), WireError> {
        match self.take_u8()? {
            WIRE_VERSION => Ok(()),
            other => Err(WireError::UnknownVersion(other)),
        }
    }

    fn take_u8(&mut self) -> Result<u8, WireError> {
        let b = *self.bytes.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn take_exact<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let end = self.pos.checked_add(N).ok_or(WireError::Truncated)?;
        let slice = self.bytes.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(slice.try_into().expect("slice length matches N"))
    }

    fn take_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take_exact::<4>()?))
    }

    fn take_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take_exact::<8>()?))
    }

    fn take_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take_exact::<8>()?))
    }

    fn take_nodes(&mut self) -> Result<Vec<NodeId>, WireError> {
        let len = self.take_u32()?;
        if len > MAX_SEQ_LEN {
            return Err(WireError::OversizedSequence(len));
        }
        let mut nodes = Vec::with_capacity(len as usize);
        for _ in 0..len {
            nodes.push(NodeId::new(self.take_u32()? as usize));
        }
        Ok(nodes)
    }

    fn finish(self) -> Result<(), WireError> {
        let left = self.bytes.len() - self.pos;
        if left == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(left))
        }
    }
}

fn take_group_msg(r: &mut Reader<'_>) -> Result<GroupMsg, WireError> {
    let group = GroupId::new(r.take_u32()? as usize);
    let inner = take_proto(r, 0)?;
    Ok(GroupMsg { group, inner })
}

fn take_proto(r: &mut Reader<'_>, depth: usize) -> Result<ProtoMsg, WireError> {
    if depth > MAX_NESTING {
        return Err(WireError::TooDeep);
    }
    match r.take_u8()? {
        TAG_SETUP => {
            let path = r.take_nodes()?;
            let idx = r.take_u32()? as usize;
            Ok(ProtoMsg::Setup { path, idx })
        }
        TAG_LEAVE_REQ => Ok(ProtoMsg::LeaveReq),
        TAG_REFRESH => Ok(ProtoMsg::Refresh),
        TAG_HELLO => Ok(ProtoMsg::Hello),
        TAG_DATA => Ok(ProtoMsg::Data { seq: r.take_u64()? }),
        TAG_QUERY => {
            let origin = NodeId::new(r.take_u32()? as usize);
            let path = r.take_nodes()?;
            let delay = r.take_f64()?;
            Ok(ProtoMsg::Query {
                origin,
                path,
                delay,
            })
        }
        TAG_QUERY_RESP => {
            let approach = r.take_nodes()?;
            let approach_delay = r.take_f64()?;
            let shr = r.take_u32()?;
            let tree_delay = r.take_f64()?;
            let idx = r.take_u32()? as usize;
            Ok(ProtoMsg::QueryResp {
                approach,
                approach_delay,
                shr,
                tree_delay,
                idx,
            })
        }
        TAG_RELIABLE => {
            let seq = r.take_u64()?;
            let base = r.take_u64()?;
            let inner = Box::new(take_proto(r, depth + 1)?);
            Ok(ProtoMsg::Reliable { seq, base, inner })
        }
        TAG_ACK => Ok(ProtoMsg::Ack { seq: r.take_u64()? }),
        other => Err(WireError::UnknownTag(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gm(inner: ProtoMsg) -> GroupMsg {
        GroupMsg {
            group: GroupId::new(3),
            inner,
        }
    }

    #[test]
    fn datagram_round_trips_with_sender() {
        let msg = gm(ProtoMsg::Data { seq: 99 });
        let from = NodeId::new(7);
        let bytes = encode_datagram(from, &msg);
        assert_eq!(decode_datagram(&bytes).unwrap(), (from, msg));
    }

    #[test]
    fn stream_framing_round_trips_multiple_messages() {
        let msgs = [
            gm(ProtoMsg::Hello),
            gm(ProtoMsg::Setup {
                path: vec![NodeId::new(1), NodeId::new(2)],
                idx: 1,
            }),
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, NodeId::new(0), m).unwrap();
        }
        let mut cursor = &buf[..];
        for m in &msgs {
            let (from, got) = read_frame(&mut cursor).unwrap().unwrap();
            assert_eq!(from, NodeId::new(0));
            assert_eq!(&got, m);
        }
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn deep_reliable_nesting_is_rejected() {
        let mut inner = ProtoMsg::Hello;
        for _ in 0..(MAX_NESTING + 2) {
            inner = ProtoMsg::Reliable {
                seq: 0,
                base: 0,
                inner: Box::new(inner),
            };
        }
        let bytes = encode_msg(&gm(inner));
        assert_eq!(decode_msg(&bytes), Err(WireError::TooDeep));
    }

    /// One representative value per [`ProtoMsg`] variant, exercising every
    /// field the codec serializes (empty and non-empty sequences, nesting,
    /// floats, zero and large integers).
    fn every_variant() -> Vec<ProtoMsg> {
        vec![
            ProtoMsg::Setup {
                path: vec![NodeId::new(0), NodeId::new(5), NodeId::new(2)],
                idx: 2,
            },
            ProtoMsg::Setup {
                path: Vec::new(),
                idx: 0,
            },
            ProtoMsg::LeaveReq,
            ProtoMsg::Refresh,
            ProtoMsg::Hello,
            ProtoMsg::Data { seq: 0 },
            ProtoMsg::Data { seq: u64::MAX },
            ProtoMsg::Query {
                origin: NodeId::new(9),
                path: vec![NodeId::new(9), NodeId::new(4)],
                delay: 3.25,
            },
            ProtoMsg::QueryResp {
                approach: vec![NodeId::new(9), NodeId::new(4), NodeId::new(1)],
                approach_delay: 0.5,
                shr: 7,
                tree_delay: 12.75,
                idx: 1,
            },
            ProtoMsg::Reliable {
                seq: 42,
                base: 40,
                inner: Box::new(ProtoMsg::Setup {
                    path: vec![NodeId::new(3)],
                    idx: 0,
                }),
            },
            ProtoMsg::Ack { seq: 42 },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for msg in every_variant() {
            let wrapped = gm(msg);
            let bytes = encode_msg(&wrapped);
            assert_eq!(decode_msg(&bytes).as_ref(), Ok(&wrapped), "{wrapped:?}");
            let datagram = encode_datagram(NodeId::new(11), &wrapped);
            assert_eq!(
                decode_datagram(&datagram),
                Ok((NodeId::new(11), wrapped.clone())),
                "{wrapped:?}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected_for_every_variant() {
        for msg in every_variant() {
            let wrapped = gm(msg);
            let mut bytes = encode_msg(&wrapped);
            bytes.push(0xAB);
            assert_eq!(
                decode_msg(&bytes),
                Err(WireError::TrailingBytes(1)),
                "{wrapped:?}"
            );
        }
    }

    #[test]
    fn oversized_path_length_is_rejected_before_allocation() {
        let mut bytes = vec![WIRE_VERSION];
        bytes.extend_from_slice(&0u32.to_le_bytes()); // group
        bytes.push(TAG_SETUP);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd path len
        assert_eq!(
            decode_msg(&bytes),
            Err(WireError::OversizedSequence(u32::MAX))
        );
    }
}
