//! Final-state snapshots and conformance digests.
//!
//! The sim and the `smrpd` daemon run the *same* router code over
//! different substrates (virtual events vs. real sockets and threads).
//! Their step-by-step schedules necessarily differ — wall-clock jitter
//! reorders independent events — so conformance is asserted on what both
//! must agree on once a scenario's horizon passes: the converged tree
//! shape of every group and the set of affected members whose service was
//! restored. [`SessionState::capture`] extracts exactly that, excluding
//! everything timing-dependent (delivery timestamps, counters, in-flight
//! recovery flags), and [`SessionState::digest`] folds it into a stable
//! 64-bit FNV-1a hex digest that golden traces embed and CI compares.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use smrp_net::{GroupId, NodeId};
use smrp_sim::SimTime;

use crate::multi::MultiRouter;

/// One node's tree state within one group, as captured for a digest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeTreeState {
    /// The node.
    pub node: u32,
    /// Whether the node was down (failed, unrepaired) at capture time.
    /// A crashed router's frozen RAM is not part of the protocol's
    /// observable outcome, so no tree fields are recorded for it.
    pub down: bool,
    /// Whether the node is on the group's tree.
    pub on_tree: bool,
    /// Whether the node is a member (receiver) of the group.
    pub member: bool,
    /// Upstream (parent) interface, if any.
    pub upstream: Option<u32>,
    /// Downstream (child) interfaces, ascending.
    pub downstream: Vec<u32>,
}

/// One group's converged outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupState {
    /// The group.
    pub group: u32,
    /// Per-node tree state; only nodes holding a lane for this group
    /// appear, ascending by node id.
    pub nodes: Vec<NodeTreeState>,
    /// Affected members whose service was restored — they received a data
    /// packet the source sent *after* the failure hit — ascending.
    pub restored: Vec<u32>,
    /// Affected members still without post-failure service at capture.
    pub stranded: Vec<u32>,
}

/// The digestible final state of a whole multi-session run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionState {
    /// Per-group outcomes, ascending by group id.
    pub groups: Vec<GroupState>,
}

/// Which members a failure cut off, per group — the denominator of the
/// restored/stranded verdict. Produced by the scenario planner (the sim
/// side) and carried inside golden traces so the daemon applies the same
/// denominator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AffectedGroup {
    /// The group.
    pub group: u32,
    /// Members the failure disconnected from the source.
    pub affected: Vec<u32>,
}

impl SessionState {
    /// Captures the digestible state of every router process after a run.
    ///
    /// `procs` is the per-node router state in node-id order (from
    /// [`smrp_sim::NetSim::into_nodes`] or the daemon's joined node
    /// runtimes); `affected` names each group's failure-affected members;
    /// `down_nodes` are nodes failed and never repaired; `fail_at` and
    /// `data_interval` feed the restoration rule: the source emits
    /// sequence `s` at `(s + 1) · data_interval`, and only packets sent
    /// after `fail_at` count as restored service.
    pub fn capture(
        procs: &[MultiRouter],
        affected: &[AffectedGroup],
        down_nodes: &BTreeSet<NodeId>,
        fail_at: SimTime,
        data_interval: SimTime,
    ) -> Self {
        let interval_ms = data_interval.as_ms();
        let sent_at = |seq: u64| SimTime::from_ms(interval_ms * (seq as f64 + 1.0));

        let mut group_ids = BTreeSet::new();
        for p in procs {
            group_ids.extend(p.groups());
        }
        for a in affected {
            group_ids.insert(GroupId::new(a.group as usize));
        }

        let mut groups = Vec::with_capacity(group_ids.len());
        for group in group_ids {
            let mut nodes = Vec::new();
            for (ni, proc_) in procs.iter().enumerate() {
                let node = NodeId::new(ni);
                let down = down_nodes.contains(&node);
                let Some(lane) = proc_.lane(group) else {
                    continue;
                };
                if down {
                    nodes.push(NodeTreeState {
                        node: ni as u32,
                        down: true,
                        on_tree: false,
                        member: false,
                        upstream: None,
                        downstream: Vec::new(),
                    });
                    continue;
                }
                let mut downstream: Vec<u32> =
                    lane.downstream().iter().map(|d| d.index() as u32).collect();
                downstream.sort_unstable();
                nodes.push(NodeTreeState {
                    node: ni as u32,
                    down: false,
                    on_tree: lane.is_on_tree(),
                    member: lane.is_member(),
                    upstream: lane.upstream().map(|u| u.index() as u32),
                    downstream,
                });
            }

            let empty = Vec::new();
            let affected_members = affected
                .iter()
                .find(|a| a.group as usize == group.index())
                .map(|a| &a.affected)
                .unwrap_or(&empty);
            let mut restored = Vec::new();
            let mut stranded = Vec::new();
            for &m in affected_members {
                let served = procs
                    .get(m as usize)
                    .and_then(|p| p.lane(group))
                    .is_some_and(|lane| lane.deliveries().iter().any(|d| sent_at(d.seq) > fail_at));
                if served {
                    restored.push(m);
                } else {
                    stranded.push(m);
                }
            }
            restored.sort_unstable();
            stranded.sort_unstable();

            groups.push(GroupState {
                group: group.index() as u32,
                nodes,
                restored,
                stranded,
            });
        }
        SessionState { groups }
    }

    /// Folds the state into a stable 16-hex-digit digest (64-bit FNV-1a
    /// over a canonical byte serialization). Two runs agree on the digest
    /// iff they agree on every captured field.
    pub fn digest(&self) -> String {
        let mut h = Fnv1a::new();
        h.put_u32(self.groups.len() as u32);
        for g in &self.groups {
            h.put_u32(g.group);
            h.put_u32(g.nodes.len() as u32);
            for n in &g.nodes {
                h.put_u32(n.node);
                h.put_u8(u8::from(n.down) | (u8::from(n.on_tree) << 1) | (u8::from(n.member) << 2));
                match n.upstream {
                    Some(u) => {
                        h.put_u8(1);
                        h.put_u32(u);
                    }
                    None => h.put_u8(0),
                }
                h.put_u32(n.downstream.len() as u32);
                for &d in &n.downstream {
                    h.put_u32(d);
                }
            }
            for list in [&g.restored, &g.stranded] {
                h.put_u32(list.len() as u32);
                for &m in list {
                    h.put_u32(m);
                }
            }
        }
        format!("{:016x}", h.finish())
    }
}

/// 64-bit FNV-1a. Not cryptographic — the digest detects divergence, it
/// does not authenticate anything.
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    fn put_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
    }

    fn put_u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.put_u8(b);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RouterConfig;

    fn small_state() -> SessionState {
        let mut p0 = MultiRouter::new(RouterConfig::default());
        p0.lane_mut(GroupId::new(0))
            .load_state(None, &[NodeId::new(1)], false);
        p0.lane_mut(GroupId::new(0)).set_source();
        let mut p1 = MultiRouter::new(RouterConfig::default());
        p1.lane_mut(GroupId::new(0))
            .load_state(Some(NodeId::new(0)), &[], true);
        SessionState::capture(
            &[p0, p1],
            &[AffectedGroup {
                group: 0,
                affected: vec![1],
            }],
            &BTreeSet::new(),
            SimTime::from_ms(100.0),
            SimTime::from_ms(5.0),
        )
    }

    #[test]
    fn capture_reads_tree_shape_and_strands_unserved_members() {
        let state = small_state();
        assert_eq!(state.groups.len(), 1);
        let g = &state.groups[0];
        assert_eq!(g.nodes.len(), 2);
        assert_eq!(g.nodes[0].downstream, vec![1]);
        assert_eq!(g.nodes[1].upstream, Some(0));
        assert!(g.nodes[1].member);
        // No deliveries were recorded, so the affected member is stranded.
        assert_eq!(g.restored, Vec::<u32>::new());
        assert_eq!(g.stranded, vec![1]);
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let state = small_state();
        let d = state.digest();
        assert_eq!(d, state.clone().digest(), "digest must be deterministic");
        let mut mutated = state;
        mutated.groups[0].nodes[1].member = false;
        assert_ne!(d, mutated.digest(), "digest must see field changes");
    }
}
