//! The per-node SMRP router state machine.
//!
//! Each router keeps PIM-style *soft state*: an upstream interface toward
//! the source and a set of downstream interfaces, each with an expiry
//! deadline pushed forward by periodic [`ProtoMsg::Refresh`] messages.
//! Data flows strictly from the upstream interface to the downstream ones.
//! Tree neighbors exchange [`ProtoMsg::Hello`] heartbeats; a router that
//! stops hearing its upstream declares a persistent failure and executes
//! its [`RecoveryPlan`] — immediately for a local detour, or after a
//! simulated unicast-reconvergence delay for the global detour baseline.

use smrp_net::NodeId;
use smrp_sim::{Ctx, NodeBehavior, SimTime, TimerToken};

use crate::messages::{ProtoMsg, TimerKind};
use crate::reliable::{ReliabilityCounters, ReliableConfig, ReliableEndpoint, RetransmitAction};

/// Protocol timing parameters shared by every router in a session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterConfig {
    /// Interval between heartbeats to tree neighbors.
    pub hello_interval: SimTime,
    /// Consecutive missed hello intervals before the upstream is declared
    /// dead.
    pub miss_limit: u32,
    /// Interval between soft-state refreshes sent upstream.
    pub refresh_interval: SimTime,
    /// Downstream state lifetime without a refresh.
    pub holdtime: SimTime,
    /// Source-only: interval between multicast data packets.
    pub data_interval: SimTime,
    /// Member-side failure detection: a member that receives no data for
    /// this long executes its recovery plan even though its own upstream
    /// heartbeats are healthy (the failure sits further up the fragment).
    /// Must comfortably exceed the normal heartbeat-detection + graft
    /// restoration time to avoid spurious grafts.
    pub starvation_limit: SimTime,
    /// Reliable-delivery tunables for tree-mutating messages (see
    /// [`crate::reliable`]).
    pub reliable: ReliableConfig,
}

impl Default for RouterConfig {
    /// Millisecond-scale defaults: 10 ms hellos with a 3-miss limit
    /// (≈30 ms detection), 50 ms refreshes with a 175 ms holdtime, 5 ms
    /// data cadence.
    fn default() -> Self {
        RouterConfig {
            hello_interval: SimTime::from_ms(10.0),
            miss_limit: 3,
            refresh_interval: SimTime::from_ms(50.0),
            holdtime: SimTime::from_ms(175.0),
            data_interval: SimTime::from_ms(5.0),
            starvation_limit: SimTime::from_ms(400.0),
            reliable: ReliableConfig::default(),
        }
    }
}

impl RouterConfig {
    /// Loss-aware hardening: adapts the soft-state timers to a channel
    /// with uniform per-transmission loss probability `loss`.
    ///
    /// Two knobs move:
    ///
    /// * **`miss_limit`** — with lossy hellos, `loss^miss_limit` is the
    ///   probability that a healthy upstream looks dead in one check
    ///   window. Campaigns run millions of windows, so the limit is raised
    ///   until that probability drops below 1e-9 (9 misses at 10% loss,
    ///   7 at 5%). Detection slows proportionally — the price of not
    ///   tearing down live branches.
    /// * **`holdtime`** — padded by `1 + 5·loss` so a refresh round that
    ///   needs a few retransmissions cannot brush the expiry deadline.
    ///
    /// A zero (or negative) `loss` returns the config unchanged, so
    /// lossless campaigns keep the paper's original timing.
    pub fn hardened_for_loss(mut self, loss: f64) -> Self {
        if loss <= 0.0 {
            return self;
        }
        assert!(loss < 1.0, "a channel losing everything cannot be hardened");
        let needed = (1e-9f64.ln() / loss.ln()).ceil() as u32;
        self.miss_limit = self.miss_limit.max(needed);
        self.holdtime = SimTime::from_ms(self.holdtime.as_ms() * (1.0 + 5.0 * loss));
        self
    }
}

/// What a router should do once it detects that its upstream died.
///
/// Plans are installed by the session orchestrator, standing in for the
/// router's own path computation (the paper assumes topology knowledge;
/// §3.3.1's query scheme is modelled at the algorithmic level in
/// `smrp-core`).
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPlan {
    /// Restoration path from this router to the attach point.
    pub path: Vec<NodeId>,
    /// Delay before the plan can execute (zero for a local detour; the
    /// unicast reconvergence time for a global detour).
    pub wait: SimTime,
    /// Estimated one-way propagation delay of `path`, as computed by the
    /// planner. Pads the activation-confirmation window
    /// ([`TimerKind::PlanConfirm`]): the graft cascade must traverse the
    /// path hop-by-hop and the first data packets must travel back, so a
    /// long detour legitimately needs longer before "no data yet" means
    /// "the plan failed silently". `ZERO` is always safe — the window
    /// never shrinks below twice the detection horizon.
    pub path_delay: SimTime,
}

/// A [`RecoveryPlan`] in the router's plan cache, stamped with the
/// topology epoch it was last validated at.
///
/// The cache is an ordered preference list: the first *valid* entry wins.
/// Entries are never silently executed against a topology they were not
/// validated for — activation requires `epoch == topology_epoch`, and the
/// epoch is bumped (with eager revalidation against the dead-neighbor
/// set) on every event that can stale a plan: a neighbor newly presumed
/// dead, a neighbor heard again after being presumed dead, an upstream
/// repoint, a reboot, and each protection maintenance sweep.
///
/// Invalidated entries stay cached rather than being dropped: deadness is
/// an inference from retry exhaustion, and a neighbor declared dead by
/// mistake un-deads itself the moment it is heard again, which restores
/// the plan's validity. The `stale_discards` counter records each
/// valid→invalid transition (the plan was abandoned as unusable).
#[derive(Debug, Clone)]
struct CachedPlan {
    plan: RecoveryPlan,
    epoch: u64,
    valid: bool,
}

/// Protection-plane accounting (plans held, activations, stale-plan
/// discards). Serializable so campaign reports can record the state and
/// activation overhead of protection mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ProtectionCounters {
    /// Backup plans currently cached and valid (state overhead gauge).
    pub plans_held: u64,
    /// Cached plans executed (each graft initiated from the cache).
    pub activations: u64,
    /// Plans abandoned because their path crossed a neighbor presumed
    /// dead — each counts one valid→invalid transition.
    pub stale_discards: u64,
}

impl ProtectionCounters {
    /// Accumulates `other` into `self`. `plans_held` is a gauge and sums
    /// across routers (total standing state), like the counters.
    pub fn merge(&mut self, other: &ProtectionCounters) {
        self.plans_held += other.plans_held;
        self.activations += other.activations;
        self.stale_discards += other.stale_discards;
    }
}

/// Downstream interface set in struct-of-arrays layout: the soft state
/// toward `nodes[i]` expires at `expires[i]`. The data fan-out loop — the
/// hottest per-packet path in a session — touches only `nodes`; the
/// expiry sweep touches only `expires`. Insertion order is preserved so
/// forwarding order stays deterministic.
#[derive(Debug, Clone, Default)]
struct DownstreamSet {
    nodes: Vec<NodeId>,
    expires: Vec<SimTime>,
}

impl DownstreamSet {
    /// Installs `node` (or pushes its deadline forward).
    fn refresh(&mut self, node: NodeId, expires: SimTime) {
        match self.nodes.iter().position(|&n| n == node) {
            Some(i) => self.expires[i] = expires,
            None => {
                self.nodes.push(node);
                self.expires.push(expires);
            }
        }
    }

    fn remove(&mut self, node: NodeId) {
        if let Some(i) = self.nodes.iter().position(|&n| n == node) {
            self.nodes.remove(i);
            self.expires.remove(i);
        }
    }

    /// Drops every entry whose deadline has passed at `now`, returning the
    /// pruned nodes (their reliable lanes get garbage-collected: an
    /// expired downstream is a presumed-dead neighbor).
    fn expire(&mut self, now: SimTime) -> Vec<NodeId> {
        let mut pruned = Vec::new();
        let mut i = 0;
        while i < self.nodes.len() {
            if self.expires[i] > now {
                i += 1;
            } else {
                pruned.push(self.nodes.remove(i));
                self.expires.remove(i);
            }
        }
        pruned
    }

    fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// One delivered data packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// Arrival time.
    pub time: SimTime,
    /// Sequence number stamped by the source.
    pub seq: u64,
}

/// SMRP router behavior for [`smrp_sim::NetSim`].
#[derive(Debug, Clone)]
pub struct Router {
    config: RouterConfig,
    is_source: bool,
    is_member: bool,
    on_tree: bool,
    upstream: Option<NodeId>,
    downstream: DownstreamSet,
    last_upstream_heard: SimTime,
    /// Whether the current upstream has been heard *helloing* since it was
    /// installed. A freshly grafted upstream only starts heartbeating once
    /// the `Setup` reaches it and is applied, so during that handshake
    /// silence is not evidence of death — see the `UpstreamCheck` handler.
    /// Acks are deliberately not enough: a neighbor acks (and buffers)
    /// envelopes it has not applied yet.
    upstream_heard: bool,
    /// The reliable `(peer, seq)` of the graft `Setup` sent to a freshly
    /// repointed upstream, if any. While this exact envelope is pending,
    /// the upstream check defers the death call: the retry budget — not
    /// hello silence — is the authoritative reachability signal for an
    /// upstream that cannot heartbeat us before the graft lands.
    pending_graft: Option<(NodeId, u64)>,
    last_data_heard: SimTime,
    /// Path of the most recently executed plan plus the count of
    /// consecutive executions it has had with no data arriving in
    /// between. An activated plan can fail *silently*: its graft cascade
    /// may land on a branch a wider failure severed from the source, or
    /// hang at a relay whose own exhaustion never feeds back here. The
    /// starvation check uses this count to rotate past such a plan (see
    /// [`Router::rotate_starved_plan`]); any data delivery clears it.
    activated_path: Option<(Vec<NodeId>, u32)>,
    /// Ordered preference list of recovery plans (see [`CachedPlan`]).
    /// Reactive restoration installs a single plan; protection mode
    /// installs a precomputed fallback chain via
    /// [`Router::install_backup_plans`].
    plan_cache: Vec<CachedPlan>,
    /// Monotone counter of plan-staling events. Cached plans carry the
    /// epoch they were last validated at; only current-epoch plans
    /// execute.
    topology_epoch: u64,
    /// Neighbors presumed dead: fed by retry-budget exhaustion (the only
    /// local evidence that a path into a second failure is hopeless),
    /// cleared per neighbor the moment that neighbor is heard again, and
    /// wholesale on reboot.
    dead_neighbors: Vec<NodeId>,
    /// Whether this router runs in protection mode (a backup-plan cache
    /// was installed); gates the plan-sweep maintenance chain.
    protection: bool,
    activations: u64,
    stale_discards: u64,
    recovering: bool,
    /// The upstream this router had when soft-state expiry pruned it off
    /// the tree. A graft that merges here while the router is off-tree
    /// re-extends the branch toward this node, PIM-graft style (see the
    /// `Setup` final-hop handling).
    former_upstream: Option<NodeId>,
    next_seq: u64,
    deliveries: Vec<Delivery>,
    forwarded: u64,
    /// Engine tokens of the live periodic timer chains, one per class.
    /// `None` means the chain is not running. Storing tokens (rather than
    /// boolean "armed" flags) lets prune and reboot *cancel* a chain in
    /// the engine's timer wheel instead of letting stale links fire into
    /// filtering checks — a chain armed before an outage would otherwise
    /// survive the reboot and run duplicated alongside the re-armed one.
    hello_token: Option<TimerToken>,
    refresh_token: Option<TimerToken>,
    expiry_token: Option<TimerToken>,
    upstream_check_token: Option<TimerToken>,
    starvation_token: Option<TimerToken>,
    data_token: Option<TimerToken>,
    plan_sweep_token: Option<TimerToken>,
    control_sent: ControlCounters,
    reliable: ReliableEndpoint,
    /// Unicast routing state (installed from the routing protocol): next
    /// hop and distance toward the multicast source.
    next_hop_to_source: Option<NodeId>,
    spf_dist_to_source: f64,
    /// Advertised tree metadata used to answer §3.3.1 queries.
    shr_value: u32,
    tree_delay_value: f64,
    pending_join: Option<PendingJoin>,
}

/// State of an in-flight §3.3.1 query-based join at the joining node.
#[derive(Debug, Clone)]
struct PendingJoin {
    d_thresh: f64,
    responses: Vec<QueryAnswer>,
}

#[derive(Debug, Clone)]
struct QueryAnswer {
    approach: Vec<NodeId>,
    approach_delay: f64,
    shr: u32,
    tree_delay: f64,
}

/// Control-plane messages emitted by a router, by type (§3.3.2's protocol
/// overhead discussion). Serializable so multi-session campaign reports
/// can record per-group control overhead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ControlCounters {
    /// Heartbeats sent to tree neighbors.
    pub hellos: u64,
    /// Soft-state refreshes sent upstream.
    pub refreshes: u64,
    /// Setup (join/graft) messages initiated or forwarded.
    pub setups: u64,
    /// Explicit leave messages sent upstream.
    pub leaves: u64,
}

impl ControlCounters {
    /// Total control messages.
    pub fn total(&self) -> u64 {
        self.hellos + self.refreshes + self.setups + self.leaves
    }

    /// Accumulates `other` into `self` (per-router counters roll up into
    /// per-group and per-run totals).
    pub fn merge(&mut self, other: &ControlCounters) {
        self.hellos += other.hellos;
        self.refreshes += other.refreshes;
        self.setups += other.setups;
        self.leaves += other.leaves;
    }
}

impl Router {
    /// Creates an idle, off-tree router.
    pub fn new(config: RouterConfig) -> Self {
        Router {
            config,
            is_source: false,
            is_member: false,
            on_tree: false,
            upstream: None,
            downstream: DownstreamSet::default(),
            last_upstream_heard: SimTime::ZERO,
            upstream_heard: true,
            pending_graft: None,
            last_data_heard: SimTime::ZERO,
            activated_path: None,
            plan_cache: Vec::new(),
            topology_epoch: 0,
            dead_neighbors: Vec::new(),
            protection: false,
            activations: 0,
            stale_discards: 0,
            recovering: false,
            former_upstream: None,
            next_seq: 0,
            deliveries: Vec::new(),
            forwarded: 0,
            hello_token: None,
            refresh_token: None,
            expiry_token: None,
            upstream_check_token: None,
            starvation_token: None,
            data_token: None,
            plan_sweep_token: None,
            control_sent: ControlCounters::default(),
            reliable: ReliableEndpoint::default(),
            next_hop_to_source: None,
            spf_dist_to_source: f64::INFINITY,
            shr_value: 0,
            tree_delay_value: 0.0,
            pending_join: None,
        }
    }

    /// Marks this router as the multicast source.
    pub fn set_source(&mut self) {
        self.is_source = true;
        self.on_tree = true;
    }

    /// Preloads tree state (used when a session loads a core-built tree
    /// instead of running message-level joins).
    pub fn load_state(&mut self, upstream: Option<NodeId>, downstream: &[NodeId], member: bool) {
        self.on_tree = true;
        self.upstream = upstream;
        // Preloaded state or not, no hello has actually crossed the link
        // yet: the first one is sent a full hello interval after boot and
        // needs a propagation delay on top. `upstream_heard` stays false
        // so the upstream check pads its deadline with that one-way delay
        // (see the cold-start rule in the `UpstreamCheck` handler) —
        // otherwise every long link in the topology boots straight into a
        // false failure detection.
        self.upstream_heard = false;
        self.downstream = DownstreamSet::default();
        for &d in downstream {
            self.downstream.refresh(d, self.config.holdtime);
        }
        self.is_member = member;
    }

    /// Installs the action to take when the upstream dies, replacing any
    /// cached plans.
    pub fn install_recovery_plan(&mut self, plan: RecoveryPlan) {
        self.plan_cache = vec![CachedPlan {
            plan,
            epoch: self.topology_epoch,
            valid: true,
        }];
    }

    /// Installs a precomputed backup-plan fallback chain (protection
    /// mode): the first valid plan activates on failure detection without
    /// any on-demand search; later entries are progressively less
    /// conservative fallbacks. Enables the plan-sweep maintenance chain
    /// the next time timers are (re)armed.
    pub fn install_backup_plans(&mut self, plans: Vec<RecoveryPlan>) {
        self.protection = true;
        self.plan_cache = plans
            .into_iter()
            .map(|plan| CachedPlan {
                plan,
                epoch: self.topology_epoch,
                valid: true,
            })
            .collect();
    }

    /// Whether this router runs in protection mode.
    pub fn protection_enabled(&self) -> bool {
        self.protection
    }

    /// Protection-plane accounting: plans currently held (valid cache
    /// entries, the standing state overhead of protection mode — reactive
    /// routers report zero even while a scenario-installed plan is
    /// cached), cached-plan activations, and stale-plan discards. The
    /// latter two count in every mode: reactive recovery flows through the
    /// same cache and staleness machinery.
    pub fn protection_counters(&self) -> ProtectionCounters {
        let held = if self.protection {
            self.plan_cache.iter().filter(|cp| cp.valid).count() as u64
        } else {
            0
        };
        ProtectionCounters {
            plans_held: held,
            activations: self.activations,
            stale_discards: self.stale_discards,
        }
    }

    /// Bumps the topology epoch and eagerly revalidates every cached plan
    /// against the dead-neighbor set. This is the single choke point for
    /// plan invalidation: after it returns, every cache entry is stamped
    /// with the current epoch and its `valid` bit reflects whether its
    /// path crosses a neighbor presumed dead. Each valid→invalid
    /// transition counts one stale-plan discard.
    fn bump_epoch_and_revalidate(&mut self) {
        self.topology_epoch += 1;
        let dead = &self.dead_neighbors;
        for cp in &mut self.plan_cache {
            let viable = !cp.plan.path.iter().any(|n| dead.contains(n));
            if cp.valid && !viable {
                self.stale_discards += 1;
            }
            cp.valid = viable;
            cp.epoch = self.topology_epoch;
        }
    }

    /// Records `node` as presumed dead (retry budget toward it ran out)
    /// and invalidates cached plans crossing it.
    fn note_neighbor_dead(&mut self, node: NodeId) {
        if self.dead_neighbors.contains(&node) {
            return;
        }
        self.dead_neighbors.push(node);
        self.bump_epoch_and_revalidate();
    }

    /// Clears a mistaken death verdict: any message from `node` proves it
    /// reachable again, which restores the validity of plans through it.
    /// If that un-blocks a recovery that had stalled with every plan
    /// discarded, retry immediately — the starvation re-push is gated off
    /// while `recovering` is latched, so this is the only path back.
    fn neighbor_heard(&mut self, ctx: &mut Ctx<'_, Self>, node: NodeId) {
        if let Some(i) = self.dead_neighbors.iter().position(|&n| n == node) {
            self.dead_neighbors.swap_remove(i);
            self.bump_epoch_and_revalidate();
            if self.recovering && self.on_tree && self.has_viable_plan() {
                self.recovering = false;
                self.detect_upstream_failure(ctx);
            }
        }
    }

    /// First cached plan that is valid *and* validated at the current
    /// topology epoch — the only plans allowed to execute.
    fn first_viable_plan(&self) -> Option<&RecoveryPlan> {
        self.plan_cache
            .iter()
            .find(|cp| cp.valid && cp.epoch == self.topology_epoch)
            .map(|cp| &cp.plan)
    }

    /// Whether any cached plan could currently execute.
    fn has_viable_plan(&self) -> bool {
        self.first_viable_plan().is_some()
    }

    /// Whether this router currently has tree state.
    pub fn is_on_tree(&self) -> bool {
        self.on_tree
    }

    /// Whether this router is a member (receiver).
    pub fn is_member(&self) -> bool {
        self.is_member
    }

    /// Current upstream interface.
    pub fn upstream(&self) -> Option<NodeId> {
        self.upstream
    }

    /// Current downstream interfaces.
    pub fn downstream(&self) -> Vec<NodeId> {
        self.downstream.nodes().to_vec()
    }

    /// Number of reliable-delivery lanes currently holding state (see
    /// [`ReliableEndpoint::lane_count`]). Campaign audits use this to
    /// verify that lanes toward dead neighbors are reclaimed.
    pub fn reliable_lane_count(&self) -> usize {
        self.reliable.lane_count()
    }

    /// Data packets delivered to this (member) router.
    pub fn deliveries(&self) -> &[Delivery] {
        &self.deliveries
    }

    /// Packets forwarded downstream by this router.
    pub fn forwarded_count(&self) -> u64 {
        self.forwarded
    }

    /// Control messages this router has sent, by type.
    pub fn control_sent(&self) -> ControlCounters {
        self.control_sent
    }

    /// Reliable-layer counters (retransmits, dup drops, exhaustions, ...).
    pub fn reliability(&self) -> ReliabilityCounters {
        self.reliable.counters()
    }

    /// Whether this router detected an upstream failure and initiated (or
    /// is waiting to initiate) recovery.
    pub fn is_recovering(&self) -> bool {
        self.recovering
    }

    /// Leaves the multicast group: membership is dropped immediately; if no
    /// downstream routers depend on this node, the next expiry check prunes
    /// it off the tree and propagates `Leave_Req` upstream (the §3.2.2
    /// departure procedure over soft state).
    pub fn leave_group(&mut self) {
        self.is_member = false;
    }

    /// Installs unicast routing state: the next hop and distance toward the
    /// multicast source, as the underlying routing protocol would provide.
    pub fn set_unicast_routing(&mut self, next_hop: Option<NodeId>, distance: f64) {
        self.next_hop_to_source = next_hop;
        self.spf_dist_to_source = distance;
    }

    /// Updates the tree metadata this router advertises to §3.3.1 queries
    /// (its `SHR(S, R)` and on-tree delay). §3.3.2's deferred
    /// recalculation: values only need to be fresh when a query arrives.
    pub fn set_tree_metadata(&mut self, shr: u32, tree_delay: f64) {
        self.shr_value = shr;
        self.tree_delay_value = tree_delay;
    }

    /// The currently advertised `SHR` value.
    pub fn advertised_shr(&self) -> u32 {
        self.shr_value
    }

    /// Starts a §3.3.1 query-based join: one query per neighbor, each
    /// relayed along that neighbor's unicast shortest path to the source
    /// until an on-tree router answers; after `timeout`, the best response
    /// wins and a `Setup` is issued along its approach path.
    pub fn start_query_join(&mut self, ctx: &mut Ctx<'_, Self>, d_thresh: f64, timeout: SimTime) {
        self.pending_join = Some(PendingJoin {
            d_thresh,
            responses: Vec::new(),
        });
        let me = ctx.me();
        let neighbors: Vec<NodeId> = ctx.graph().neighbors(me).collect();
        for nb in neighbors {
            self.control_sent.setups += 1;
            ctx.send(
                nb,
                ProtoMsg::Query {
                    origin: me,
                    path: vec![me],
                    delay: 0.0,
                },
            );
        }
        ctx.set_timer(timeout, TimerKind::QueryTimeout);
    }

    /// Whether a query-based join is still waiting for its timeout.
    pub fn query_join_pending(&self) -> bool {
        self.pending_join.is_some()
    }

    /// First delivery strictly after `t`, if any.
    pub fn first_delivery_after(&self, t: SimTime) -> Option<Delivery> {
        self.deliveries.iter().copied().find(|d| d.time > t)
    }

    /// Arms the periodic timers; the session calls this once per on-tree
    /// node at start-up (the source also starts the data pump). Safe to
    /// call again — timers are only armed once.
    pub fn start_timers(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.last_upstream_heard = ctx.now();
        self.last_data_heard = ctx.now();
        self.activated_path = None;
        self.ensure_periodic_timers(ctx);
        self.ensure_upstream_check(ctx);
        if self.is_member && !self.is_source && self.starvation_token.is_none() {
            self.starvation_token =
                Some(ctx.set_timer(self.config.starvation_limit, TimerKind::StarvationCheck));
        }
        if self.is_source && self.data_token.is_none() {
            self.data_token = Some(ctx.set_timer(self.config.data_interval, TimerKind::DataTick));
        }
        if self.protection && !self.plan_cache.is_empty() && self.plan_sweep_token.is_none() {
            self.plan_sweep_token = Some(ctx.set_timer(self.config.holdtime, TimerKind::PlanSweep));
        }
    }

    fn ensure_periodic_timers(&mut self, ctx: &mut Ctx<'_, Self>) {
        if self.hello_token.is_some() {
            return;
        }
        self.hello_token = Some(ctx.set_timer(self.config.hello_interval, TimerKind::HelloTick));
        self.refresh_token =
            Some(ctx.set_timer(self.config.refresh_interval, TimerKind::RefreshTick));
        self.expiry_token = Some(ctx.set_timer(self.config.holdtime, TimerKind::ExpiryCheck));
    }

    fn ensure_upstream_check(&mut self, ctx: &mut Ctx<'_, Self>) {
        if self.upstream.is_none() || self.upstream_check_token.is_some() {
            return;
        }
        self.upstream_check_token =
            Some(ctx.set_timer(self.config.hello_interval, TimerKind::UpstreamCheck));
    }

    /// Cancels every live timer chain and forgets the tokens. Used on
    /// reboot (pending chain links died conceptually with the node, but
    /// their wheel entries would survive a quick repair and duplicate the
    /// re-armed chains) and when a pruned router leaves the tree.
    fn cancel_periodic_timers(&mut self, ctx: &mut Ctx<'_, Self>) {
        for token in [
            self.hello_token.take(),
            self.refresh_token.take(),
            self.expiry_token.take(),
            self.upstream_check_token.take(),
            self.starvation_token.take(),
            self.data_token.take(),
            self.plan_sweep_token.take(),
        ]
        .into_iter()
        .flatten()
        {
            ctx.cancel_timer(token);
        }
    }

    /// The retransmission timeout toward `to`: 4× the one-way link delay,
    /// floored at the configured minimum, so slow Waxman links do not
    /// retransmit spuriously while short links retry promptly.
    fn rto_for(&self, ctx: &Ctx<'_, Self>, to: NodeId) -> SimTime {
        let one_way = ctx.graph().delay_between(ctx.me(), to).unwrap_or(0.0);
        SimTime::from_ms((4.0 * one_way).max(self.config.reliable.rto_floor.as_ms()))
    }

    /// Sends a tree-mutating message through the reliable layer: assigns a
    /// per-neighbor sequence number, wraps it in an envelope and arms the
    /// first retransmission timer. Returns the assigned sequence number.
    fn send_reliable(&mut self, ctx: &mut Ctx<'_, Self>, to: NodeId, msg: ProtoMsg) -> u64 {
        let seq = self.reliable.register(to, msg.clone());
        ctx.send(
            to,
            ProtoMsg::Reliable {
                seq,
                base: self.reliable.base_for(to),
                inner: Box::new(msg),
            },
        );
        let rto = self.rto_for(ctx, to);
        let token = ctx.set_timer(rto, TimerKind::Retransmit { to, seq });
        self.reliable.set_retransmit_token(to, seq, token);
        seq
    }

    /// Sends a graft `Setup` toward the (freshly repointed) upstream `to`
    /// and remembers its envelope so the upstream check can tell an
    /// in-flight handshake from a dead upstream.
    fn send_graft(&mut self, ctx: &mut Ctx<'_, Self>, to: NodeId, msg: ProtoMsg) {
        self.control_sent.setups += 1;
        let seq = self.send_reliable(ctx, to, msg);
        self.pending_graft = Some((to, seq));
    }

    /// Repoints the upstream interface at `new_up`, abandoning any
    /// reliable traffic still pending toward the old upstream (retrying
    /// into a dead or bypassed branch is pointless and would otherwise be
    /// miscounted as retry exhaustion).
    fn repoint_upstream(&mut self, ctx: &mut Ctx<'_, Self>, new_up: NodeId) {
        if let Some(old) = self.upstream {
            if old != new_up {
                for token in self.reliable.abandon(old) {
                    ctx.cancel_timer(token);
                }
            }
        }
        if self.upstream != Some(new_up) {
            self.upstream = Some(new_up);
            self.last_upstream_heard = ctx.now();
            self.upstream_heard = false;
            // A graft through this router repairs whatever failure it was
            // recovering from: re-enable failure detection on the new
            // upstream instead of staying latched on the dead one.
            self.recovering = false;
            // A repoint is a tree event that can stale cached plans (a
            // protection plan's contingency was built for the previous
            // upstream). Bump the epoch so no plan executes without
            // passing revalidation first — the revalidation is eager, so
            // plans that remain safe (including the one whose graft
            // caused this repoint) stay executable for starvation
            // re-pushes.
            self.bump_epoch_and_revalidate();
        }
    }

    /// Initiates a source-routed state installation along `path`
    /// (`path[0]` must be this router). Used for joins and grafts.
    pub fn initiate_setup(&mut self, ctx: &mut Ctx<'_, Self>, path: Vec<NodeId>, member: bool) {
        debug_assert!(path.len() >= 2, "setup path needs at least two hops");
        debug_assert_eq!(path[0], ctx.me(), "setup path starts at the initiator");
        self.on_tree = true;
        if member {
            self.is_member = true;
        }
        self.repoint_upstream(ctx, path[1]);
        self.last_upstream_heard = ctx.now();
        let next = path[1];
        self.send_graft(ctx, next, ProtoMsg::Setup { path, idx: 1 });
        self.ensure_periodic_timers(ctx);
        self.ensure_upstream_check(ctx);
    }

    fn install_downstream(&mut self, ctx: &Ctx<'_, Self>, node: NodeId) {
        self.downstream
            .refresh(node, ctx.now() + self.config.holdtime);
    }

    /// Re-extends a pruned branch: rejoin toward the upstream this router
    /// had when soft-state expiry pruned it, forwarding a one-hop graft
    /// that cascades until it merges with live tree state (PIM-graft
    /// style). Returns `false` when there is nothing to re-extend to (the
    /// router was never on the tree).
    fn rejoin_former_upstream(&mut self, ctx: &mut Ctx<'_, Self>) -> bool {
        let Some(up) = self.former_upstream else {
            return false;
        };
        self.on_tree = true;
        self.upstream = Some(up);
        self.last_upstream_heard = ctx.now();
        self.upstream_heard = false; // it pruned us — no heartbeats yet.
        self.ensure_periodic_timers(ctx);
        self.ensure_upstream_check(ctx);
        let me = ctx.me();
        self.send_graft(
            ctx,
            up,
            ProtoMsg::Setup {
                path: vec![me, up],
                idx: 1,
            },
        );
        true
    }

    fn detect_upstream_failure(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.recovering = true;
        // The upstream is presumed dead: keeping envelopes in flight
        // toward it would only burn the retry budget, and its reliable
        // lanes are reclaimed wholesale (the transmit sequence counter
        // survives inside the endpoint in case the neighbor was declared
        // dead by mistake).
        if let Some(up) = self.upstream {
            for token in self.reliable.gc_peer(up) {
                ctx.cancel_timer(token);
            }
        }
        let Some(wait) = self.first_viable_plan().map(|p| p.wait) else {
            return; // nothing can be done (modelled as unrecoverable).
        };
        if wait == SimTime::ZERO {
            self.execute_recovery(ctx);
        } else {
            ctx.set_timer(wait, TimerKind::ReconvergenceDone);
        }
    }

    fn execute_recovery(&mut self, ctx: &mut Ctx<'_, Self>) {
        // The plan is cloned, not consumed: under a lossy control plane a
        // graft can stall mid-cascade — a forwarding hop's upstream-failure
        // detection may abandon the pending Setup before a retransmission
        // lands, severing the chain at a detour-only node that no refresh
        // can resurrect. Keeping the plan lets the starvation check
        // re-execute it for as long as the member keeps starving; the
        // reliable layer's dedup makes repeated grafts idempotent.
        //
        // The cache lookup enforces the protection-plane safety property:
        // only a plan validated at the current topology epoch (and
        // crossing no neighbor presumed dead) may execute. A plan that
        // went stale between detection and execution — a second failure
        // killed the planned detour while a reconvergence timer was
        // pending, say — is skipped here rather than grafted into the
        // dead topology.
        let Some(plan) = self.first_viable_plan().cloned() else {
            return;
        };
        debug_assert!(
            !plan.path.iter().any(|n| self.dead_neighbors.contains(n)),
            "a plan through a presumed-dead neighbor must never execute"
        );
        if plan.path.len() < 2 {
            return;
        }
        self.activations += 1;
        match &mut self.activated_path {
            Some((path, pushes)) if *path == plan.path => *pushes += 1,
            slot => *slot = Some((plan.path.clone(), 1)),
        }
        self.initiate_setup(ctx, plan.path, self.is_member);
        self.recovering = false;
        // Activation is confirmed by data actually arriving. A graft can
        // succeed hop-by-hop yet restore nothing — the target may sit in
        // a fragment a wider failure severed from the source, or a relay
        // deep in the path may be dead, its retry exhaustion feeding back
        // only to its own cache, never to this node's. The confirm timer
        // is how such silent failures advance the fallback chain instead
        // of churning forever (see [`TimerKind::PlanConfirm`]). Twice the
        // detection horizon leaves room for the cascade to complete and
        // the first data packets to travel back; twice the plan's own
        // path delay on top covers long detours, whose cascade + data
        // round trip is dominated by propagation, not by timer grain.
        let confirm = SimTime::from_ms(
            2.0 * self.config.hello_interval.as_ms() * self.config.miss_limit as f64
                + 2.0 * plan.path_delay.as_ms(),
        );
        ctx.set_timer(confirm, TimerKind::PlanConfirm);
    }

    /// Removes the cached plan with `path` — presumed to have failed
    /// silently — provided a *different* viable plan exists to advance
    /// to. A lone plan is kept and re-pushed instead: discarding it would
    /// turn a lossy stall into a permanent outage, and for single-plan
    /// (reactive) caches the starvation re-push is the recovery path.
    /// Returns whether a discard happened.
    fn discard_silent_plan(&mut self, path: &[NodeId]) -> bool {
        let has_alternative = self
            .plan_cache
            .iter()
            .any(|cp| cp.valid && cp.epoch == self.topology_epoch && cp.plan.path != path);
        if !has_alternative {
            return false;
        }
        self.plan_cache.retain(|cp| cp.plan.path != path);
        self.stale_discards += 1;
        self.activated_path = None;
        true
    }

    /// Starvation-side rotation: once the same path has been pushed twice
    /// with no data heard in between (the first re-push is kept — under a
    /// lossy channel a stalled cascade usually completes on the second
    /// push), the plan is presumed silently useless and the chain
    /// advances. The safety net behind [`TimerKind::PlanConfirm`] for
    /// members whose confirm windows raced a slow cascade.
    fn rotate_starved_plan(&mut self) {
        let Some((path, pushes)) = &self.activated_path else {
            return;
        };
        if *pushes < 2 {
            return;
        }
        let path = path.clone();
        self.discard_silent_plan(&path);
    }
}

impl NodeBehavior for Router {
    type Msg = ProtoMsg;
    type Timer = TimerKind;

    fn on_reboot(&mut self, ctx: &mut Ctx<'_, Self>) {
        // The periodic chains must be rebuilt from scratch — and the old
        // chains *cancelled*, not merely forgotten: a tick armed before
        // the outage survives in the timer wheel, and if the repair lands
        // before it fires it would run duplicated alongside the re-armed
        // chain (double hello rate, double refresh traffic). Cancelling by
        // token makes the stale links unreachable regardless of timing.
        // `start_timers` also resets the upstream/data silence clocks: the
        // reboot must not mistake its own outage window for an upstream
        // failure.
        self.cancel_periodic_timers(ctx);
        // Death verdicts predate the outage and may be obsolete (the
        // repair that brought this node back can have brought others
        // back too). Forget them and revalidate the plan cache; real
        // deadness re-learns itself through retry exhaustion.
        self.dead_neighbors.clear();
        self.bump_epoch_and_revalidate();
        if self.on_tree || self.is_source {
            self.start_timers(ctx);
        }
        // Retransmission timers need the same treatment: re-arm one per
        // still-pending envelope so unacked control traffic resumes, and
        // cancel whatever the old timer chain left in the wheel.
        for (to, seq) in self.reliable.pending_keys() {
            let rto = self.rto_for(ctx, to);
            let token = ctx.set_timer(rto, TimerKind::Retransmit { to, seq });
            if let Some(old) = self.reliable.set_retransmit_token(to, seq, token) {
                ctx.cancel_timer(old);
            }
        }
    }

    fn classify(msg: &ProtoMsg) -> &'static str {
        match msg {
            ProtoMsg::Setup { .. } => "setup",
            ProtoMsg::LeaveReq => "leave",
            ProtoMsg::Refresh => "refresh",
            ProtoMsg::Hello => "hello",
            ProtoMsg::Data { .. } => "data",
            ProtoMsg::Query { .. } | ProtoMsg::QueryResp { .. } => "query",
            // Count envelope losses under the wrapped message's class.
            ProtoMsg::Reliable { inner, .. } => Self::classify(inner),
            ProtoMsg::Ack { .. } => "ack",
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, msg: ProtoMsg) {
        // Hearing anything from a neighbor disproves its presumed death
        // and restores the validity of cached plans through it.
        self.neighbor_heard(ctx, from);
        match msg {
            ProtoMsg::Ack { seq } => {
                // An ack from the upstream proves it is alive, so it feeds
                // the silence clock — but not `upstream_heard`: a neighbor
                // acks (and buffers) envelopes it has not applied yet, and
                // only an applied graft makes it heartbeat us.
                if self.upstream == Some(from) {
                    self.last_upstream_heard = ctx.now();
                }
                // The ack retires the envelope; its retransmission timer
                // is cancelled in the wheel rather than left to fire into
                // a "still pending?" check.
                if let Some(token) = self.reliable.on_ack(from, seq) {
                    ctx.cancel_timer(token);
                }
            }
            ProtoMsg::Reliable { seq, base, inner } => {
                // Ack every copy — the sender's copy of the ack may have
                // been lost even if the payload was already processed.
                self.reliable.note_ack_sent();
                ctx.send(from, ProtoMsg::Ack { seq });
                for released in self.reliable.on_receive(from, seq, base, *inner) {
                    self.apply_control(ctx, from, released);
                }
            }
            other => self.apply_control(ctx, from, other),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: TimerKind) {
        self.handle_timer(ctx, timer);
    }
}

impl Router {
    /// Applies one control message to the soft-state machine. Reliable
    /// payloads arrive here deduplicated and in per-neighbor sequence
    /// order; raw messages (`Hello`, `Data`, queries) arrive as the
    /// channel delivered them.
    fn apply_control(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, msg: ProtoMsg) {
        match msg {
            ProtoMsg::Hello => {
                if self.upstream == Some(from) {
                    self.last_upstream_heard = ctx.now();
                    self.upstream_heard = true;
                }
            }
            ProtoMsg::Refresh => {
                if self.on_tree {
                    self.install_downstream(ctx, from);
                } else if self.rejoin_former_upstream(ctx) {
                    // A downstream neighbor still refreshes this pruned
                    // branch — e.g. a rebooted router whose subtree
                    // survived a transient outage. Soft-state joins
                    // re-extend the branch toward the tree.
                    self.install_downstream(ctx, from);
                }
            }
            ProtoMsg::Setup { path, idx } => {
                debug_assert_eq!(path.get(idx), Some(&ctx.me()));
                self.install_downstream(ctx, from);
                if idx + 1 < path.len() {
                    // A relay that is *live* on the tree — data flowed
                    // through it within the failure-detection horizon —
                    // terminates the cascade here, PIM-merge style: the
                    // graft's downstream leg was installed above, and the
                    // relay keeps its own (working) upstream. Repointing a
                    // live relay is how a scenario-blind protection plan
                    // corrupts the tree: the plan's path was computed
                    // against a hypothetical contingency, and when several
                    // fragment roots activate simultaneously, their
                    // cascades can repoint relays on each other's feed
                    // paths into a cycle no soft-state refresh dissolves.
                    // A merge at the first live relay is always at least
                    // as good as the planned attach point.
                    let horizon = SimTime::from_ms(
                        self.config.hello_interval.as_ms() * self.config.miss_limit as f64,
                    );
                    let live = self.is_source
                        || (self.on_tree
                            && !self.recovering
                            && ctx.now() - self.last_data_heard <= horizon);
                    if live {
                        return;
                    }
                    // Interior hop of an explicit (source-routed) setup:
                    // (re)orient the upstream along the path and forward.
                    // Join paths never cross on-tree interiors (the
                    // selection is sink-constrained), so replacement only
                    // happens for restoration paths routed through a
                    // disconnected fragment — where the stale upstream is
                    // exactly what must be overridden.
                    self.on_tree = true;
                    let next = path[idx + 1];
                    self.repoint_upstream(ctx, next);
                    self.ensure_periodic_timers(ctx);
                    self.ensure_upstream_check(ctx);
                    self.send_graft(ctx, next, ProtoMsg::Setup { path, idx: idx + 1 });
                } else if !self.on_tree {
                    // Final hop, but the merger pruned itself while the
                    // graft was in flight: the restoration path was
                    // computed against the tree at failure time, and a
                    // slow detour (global reconvergence, starvation-
                    // triggered member recovery) can outlive the branch's
                    // soft state. Re-extend the branch hop-by-hop toward
                    // the remembered upstream until it merges with live
                    // tree state. Pruned relays on the surviving tree
                    // always remember a usable upstream, so the cascade
                    // terminates at the first on-tree router.
                    self.rejoin_former_upstream(ctx);
                }
                // Final hop on a live merger: the downstream was installed
                // above, nothing to forward (PIM merge semantics).
            }
            ProtoMsg::LeaveReq => {
                self.downstream.remove(from);
            }
            ProtoMsg::Data { seq } => {
                if self.upstream != Some(from) && !self.is_source {
                    return; // only accept data from the upstream interface.
                }
                self.last_data_heard = ctx.now();
                // Service is flowing again: whatever plan got us here is
                // vindicated, so the silent-failure rotation count resets.
                self.activated_path = None;
                if self.is_member {
                    self.deliveries.push(Delivery {
                        time: ctx.now(),
                        seq,
                    });
                }
                for &d in self.downstream.nodes() {
                    ctx.send(d, ProtoMsg::Data { seq });
                    self.forwarded += 1;
                }
            }
            ProtoMsg::Query {
                origin,
                mut path,
                delay,
            } => {
                let me = ctx.me();
                let hop_delay = ctx
                    .graph()
                    .delay_between(from, me)
                    .expect("messages arrive over real links");
                let delay = delay + hop_delay;
                path.push(me);
                if self.on_tree {
                    // First on-tree router: answer with the advertised
                    // SHR and tree delay, retracing the query path.
                    let idx = path.len() - 2;
                    let back = path[idx];
                    ctx.send(
                        back,
                        ProtoMsg::QueryResp {
                            approach: path,
                            approach_delay: delay,
                            shr: self.shr_value,
                            tree_delay: self.tree_delay_value,
                            idx,
                        },
                    );
                } else if let Some(next) = self.next_hop_to_source {
                    // Relay along this node's unicast path to the source,
                    // unless that would loop.
                    if !path.contains(&next) {
                        ctx.send(
                            next,
                            ProtoMsg::Query {
                                origin,
                                path,
                                delay,
                            },
                        );
                    }
                }
            }
            ProtoMsg::QueryResp {
                approach,
                approach_delay,
                shr,
                tree_delay,
                idx,
            } => {
                if idx == 0 {
                    if let Some(pending) = self.pending_join.as_mut() {
                        pending.responses.push(QueryAnswer {
                            approach,
                            approach_delay,
                            shr,
                            tree_delay,
                        });
                    }
                } else {
                    let back = approach[idx - 1];
                    ctx.send(
                        back,
                        ProtoMsg::QueryResp {
                            approach,
                            approach_delay,
                            shr,
                            tree_delay,
                            idx: idx - 1,
                        },
                    );
                }
            }
            // Envelopes and acks are unwrapped in `on_message` before
            // reaching this point; nested ones would be a layering bug.
            ProtoMsg::Reliable { .. } | ProtoMsg::Ack { .. } => {
                debug_assert!(false, "reliable envelope leaked into apply_control");
            }
        }
    }

    fn handle_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: TimerKind) {
        match timer {
            TimerKind::HelloTick => {
                if self.on_tree {
                    if let Some(up) = self.upstream {
                        self.control_sent.hellos += 1;
                        ctx.send(up, ProtoMsg::Hello);
                    }
                    for &d in self.downstream.nodes() {
                        self.control_sent.hellos += 1;
                        ctx.send(d, ProtoMsg::Hello);
                    }
                }
                self.hello_token =
                    Some(ctx.set_timer(self.config.hello_interval, TimerKind::HelloTick));
            }
            TimerKind::UpstreamCheck => {
                if let Some(up) = self.upstream.filter(|_| self.on_tree && !self.recovering) {
                    let silence = ctx.now() - self.last_upstream_heard;
                    // Cold-start rule: until the upstream has been heard
                    // at least once, the silence clock includes the time
                    // its very first hello legitimately spends in flight —
                    // one propagation delay of the shared link (a local
                    // link property, the moral equivalent of a configured
                    // BFD interval). Established neighbors keep the plain
                    // miss-limit rule: steady-state hello *inter-arrival*
                    // equals the hello interval no matter how long the
                    // link is.
                    let cold_start = if self.upstream_heard {
                        0.0
                    } else {
                        ctx.graph().delay_between(ctx.me(), up).unwrap_or(0.0)
                    };
                    let deadline = SimTime::from_ms(
                        self.config.hello_interval.as_ms() * self.config.miss_limit as f64
                            + cold_start,
                    );
                    // An upstream that has never helloed us is still
                    // mid-handshake: it only starts heartbeating once the
                    // graft's `Setup` reaches it and is applied, and a few
                    // lost copies on a long-RTO link can outlast the miss
                    // window. While that exact envelope is still retrying,
                    // silence is not evidence of death — the retry budget
                    // (which survives 10% loss with 1e-9 failure odds) is
                    // the authoritative signal, and its exhaustion or
                    // abandonment bounds the deferral. An established
                    // upstream keeps the fast miss-limit rule.
                    let handshaking = !self.upstream_heard
                        && self
                            .pending_graft
                            .is_some_and(|(to, seq)| to == up && self.reliable.is_pending(to, seq));
                    if silence > deadline && !handshaking {
                        self.detect_upstream_failure(ctx);
                    }
                }
                if self.upstream.is_some() {
                    self.upstream_check_token =
                        Some(ctx.set_timer(self.config.hello_interval, TimerKind::UpstreamCheck));
                } else {
                    self.upstream_check_token = None;
                }
            }
            TimerKind::RefreshTick => {
                if self.on_tree {
                    if let Some(up) = self.upstream {
                        self.control_sent.refreshes += 1;
                        if self.recovering {
                            // The upstream is presumed dead. Soft state
                            // heals by repetition — keep probing with raw
                            // refreshes so a repaired upstream re-learns
                            // this branch, but don't burn retry budget
                            // retransmitting into the outage.
                            ctx.send(up, ProtoMsg::Refresh);
                        } else {
                            self.send_reliable(ctx, up, ProtoMsg::Refresh);
                        }
                    }
                }
                self.refresh_token =
                    Some(ctx.set_timer(self.config.refresh_interval, TimerKind::RefreshTick));
            }
            TimerKind::ExpiryCheck => {
                let now = ctx.now();
                // Expired downstream neighbors are presumed dead (or gone
                // for good): reclaim their reliable lanes so long churny
                // campaigns don't accumulate state for corpses, and cancel
                // any retransmission timers aimed at them.
                for dead in self.downstream.expire(now) {
                    for token in self.reliable.gc_peer(dead) {
                        ctx.cancel_timer(token);
                    }
                }
                if self.on_tree && !self.is_source && !self.is_member && self.downstream.is_empty()
                {
                    // A relay with no remaining downstream state leaves the
                    // tree (the soft-state analogue of pruning). Remember
                    // the branch direction: a later graft that merges here
                    // must be able to re-extend toward the tree.
                    if let Some(up) = self.upstream.take() {
                        self.former_upstream = Some(up);
                        if self.recovering {
                            // The upstream is already presumed dead; a
                            // leave toward it would only retransmit into
                            // the void until the budget ran out.
                            for token in self.reliable.gc_peer(up) {
                                ctx.cancel_timer(token);
                            }
                        } else {
                            self.control_sent.leaves += 1;
                            self.send_reliable(ctx, up, ProtoMsg::LeaveReq);
                        }
                    }
                    self.on_tree = false;
                }
                self.expiry_token =
                    Some(ctx.set_timer(self.config.holdtime, TimerKind::ExpiryCheck));
            }
            TimerKind::DataTick => {
                if self.is_source {
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    if self.is_member {
                        self.deliveries.push(Delivery {
                            time: ctx.now(),
                            seq,
                        });
                    }
                    for &d in self.downstream.nodes() {
                        ctx.send(d, ProtoMsg::Data { seq });
                        self.forwarded += 1;
                    }
                    self.data_token =
                        Some(ctx.set_timer(self.config.data_interval, TimerKind::DataTick));
                } else {
                    self.data_token = None;
                }
            }
            TimerKind::StarvationCheck => {
                // While this node's own graft envelope is still unacked,
                // re-detecting would abandon it (`detect_upstream_failure`
                // reclaims the upstream's reliable lanes) and replace it
                // with a fresh copy every starvation period — so the retry
                // budget would never run out and a graft aimed at a dead
                // detour would loop forever instead of exhausting and
                // invalidating the plan. The in-flight envelope already
                // retransmits on its own backoff; let its budget deliver
                // the reachability verdict.
                let graft_in_flight = self
                    .pending_graft
                    .is_some_and(|(to, seq)| self.reliable.is_pending(to, seq));
                if self.is_member
                    && self.on_tree
                    && !self.recovering
                    && !graft_in_flight
                    && self.has_viable_plan()
                    && ctx.now() - self.last_data_heard > self.config.starvation_limit
                {
                    // The stream died but this node's own upstream is alive:
                    // the failure sits higher in a fragment whose root could
                    // not repair it. Recover independently (§3.1: each
                    // disconnected member locates a restoration path). The
                    // plan survives execution, so this also re-pushes a
                    // graft whose cascade stalled on a lossy channel — the
                    // member retries every starvation period until data
                    // actually flows. A plan that keeps being re-pushed
                    // without ever yielding data is presumed silently
                    // useless and rotated out of the fallback chain first.
                    self.rotate_starved_plan();
                    self.detect_upstream_failure(ctx);
                }
                self.starvation_token = if self.is_member {
                    Some(ctx.set_timer(self.config.starvation_limit, TimerKind::StarvationCheck))
                } else {
                    None
                };
            }
            TimerKind::QueryTimeout => {
                let Some(pending) = self.pending_join.take() else {
                    return;
                };
                // Apply the §3.2.2 criterion over the responses: minimum
                // SHR within the delay bound, ties by total delay; fall
                // back to the shortest response when nothing fits.
                let bound = (1.0 + pending.d_thresh) * self.spf_dist_to_source;
                let total = |a: &QueryAnswer| a.tree_delay + a.approach_delay;
                let best = pending
                    .responses
                    .iter()
                    .filter(|a| total(a) <= bound + 1e-9)
                    .min_by(|x, y| x.shr.cmp(&y.shr).then(total(x).total_cmp(&total(y))))
                    .or_else(|| {
                        pending
                            .responses
                            .iter()
                            .min_by(|x, y| total(x).total_cmp(&total(y)))
                    });
                if let Some(best) = best {
                    self.initiate_setup(ctx, best.approach.clone(), true);
                }
            }
            TimerKind::ReconvergenceDone => {
                self.execute_recovery(ctx);
            }
            TimerKind::PlanConfirm => {
                // Data arrival clears `activated_path`, so a surviving
                // entry means the activation it timed is still
                // unconfirmed: the plan failed silently. Advance the
                // chain if it has anywhere to advance to, and execute
                // the successor immediately — restoration speed is the
                // whole point of a precomputed fallback chain.
                let Some((path, _)) = self.activated_path.clone() else {
                    return;
                };
                if self.discard_silent_plan(&path) {
                    self.recovering = false;
                    self.detect_upstream_failure(ctx);
                }
            }
            TimerKind::Retransmit { to, seq } => {
                let rto = self.rto_for(ctx, to);
                match self
                    .reliable
                    .on_retransmit_timer(to, seq, &self.config.reliable, rto)
                {
                    RetransmitAction::Retry { msg, delay } => {
                        // Recompute the base per copy: it is how news of
                        // abandoned lower sequence numbers reaches the
                        // receiver, letting a wedged lane skip the gap.
                        ctx.send(
                            to,
                            ProtoMsg::Reliable {
                                seq,
                                base: self.reliable.base_for(to),
                                inner: Box::new(msg),
                            },
                        );
                        let token = ctx.set_timer(delay, TimerKind::Retransmit { to, seq });
                        self.reliable.set_retransmit_token(to, seq, token);
                    }
                    RetransmitAction::Exhausted => {
                        // The retry budget toward `to` ran out: as far as
                        // this router can tell, `to` is gone. Record the
                        // verdict and invalidate every cached plan whose
                        // path crosses it — the stale-plan fix: a plan
                        // computed before a second failure must be
                        // discarded, not re-grafted into the dead
                        // topology by the next starvation check. (The
                        // exhaustion itself is already counted by the
                        // endpoint and surfaced through health
                        // reporting.)
                        self.note_neighbor_dead(to);
                        if self.pending_graft.is_some_and(|(p, s)| p == to && s == seq) {
                            self.pending_graft = None;
                        }
                        // If the dead neighbor is the upstream this
                        // router was grafting toward, the recovery
                        // attempt failed: fall back to the next viable
                        // cached plan (protection fallback chain), or
                        // stay latched in `recovering` with no plan —
                        // which also stops the starvation re-push loop.
                        if self.upstream == Some(to) && self.on_tree {
                            self.recovering = false;
                            self.detect_upstream_failure(ctx);
                        }
                    }
                    // Acked/abandoned entries need nothing.
                    RetransmitAction::Done => {}
                }
            }
            TimerKind::PlanSweep => {
                // Protection maintenance: re-stamp the cache against the
                // current dead-neighbor set so a plan staled between
                // failures is caught even while no activation is in
                // flight. The chain re-arms only while protection mode
                // holds plans, and its token lives in
                // `cancel_periodic_timers` like every other chain.
                if self.protection && !self.plan_cache.is_empty() {
                    self.bump_epoch_and_revalidate();
                    self.plan_sweep_token =
                        Some(ctx.set_timer(self.config.holdtime, TimerKind::PlanSweep));
                } else {
                    self.plan_sweep_token = None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smrp_net::Graph;
    use smrp_sim::NetSim;

    fn config() -> RouterConfig {
        RouterConfig::default()
    }

    /// Line: S - R - M.
    fn line() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::with_nodes(3);
        let ids: Vec<_> = g.node_ids().collect();
        g.add_link(ids[0], ids[1], 1.0).unwrap();
        g.add_link(ids[1], ids[2], 1.0).unwrap();
        (g, ids)
    }

    fn loaded_line_sim<'a>(g: &'a Graph, ids: &[NodeId]) -> NetSim<'a, Router> {
        let mut routers: Vec<Router> = (0..g.node_count()).map(|_| Router::new(config())).collect();
        routers[ids[0].index()].set_source();
        routers[ids[0].index()].load_state(None, &[ids[1]], false);
        routers[ids[1].index()].load_state(Some(ids[0]), &[ids[2]], false);
        routers[ids[2].index()].load_state(Some(ids[1]), &[], true);
        let mut sim = NetSim::new(g, routers);
        for &n in ids {
            sim.with_node(n, |r, ctx| r.start_timers(ctx));
        }
        sim
    }

    #[test]
    fn data_flows_down_the_tree() {
        let (g, ids) = line();
        let mut sim = loaded_line_sim(&g, &ids);
        sim.run_until(SimTime::from_ms(100.0));
        let member = sim.node(ids[2]);
        assert!(
            member.deliveries().len() >= 15,
            "got {}",
            member.deliveries().len()
        );
        // Sequence numbers arrive in order without duplication.
        let seqs: Vec<u64> = member.deliveries().iter().map(|d| d.seq).collect();
        for w in seqs.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn soft_state_survives_refreshes() {
        let (g, ids) = line();
        let mut sim = loaded_line_sim(&g, &ids);
        // Far beyond the holdtime: refreshes must keep state alive.
        sim.run_until(SimTime::from_ms(1000.0));
        assert!(sim.node(ids[1]).is_on_tree());
        assert_eq!(sim.node(ids[1]).downstream(), vec![ids[2]]);
        assert!(sim
            .node(ids[2])
            .first_delivery_after(SimTime::from_ms(900.0))
            .is_some());
    }

    #[test]
    fn member_silence_expires_branch_state() {
        let (g, ids) = line();
        let mut sim = loaded_line_sim(&g, &ids);
        sim.run_until(SimTime::from_ms(50.0));
        // Kill the member: its refreshes stop; R must eventually prune
        // itself off the tree.
        sim.fail_node_now(ids[2]);
        sim.run_until(SimTime::from_ms(800.0));
        assert!(!sim.node(ids[1]).is_on_tree(), "relay should have pruned");
        assert!(sim.node(ids[0]).downstream().is_empty());
    }

    #[test]
    fn upstream_failure_triggers_local_detour() {
        // Square: S - R - M plus a detour M - X - S.
        let mut g = Graph::with_nodes(4);
        let ids: Vec<_> = g.node_ids().collect();
        let [s, r, m, x] = [ids[0], ids[1], ids[2], ids[3]];
        g.add_link(s, r, 1.0).unwrap();
        g.add_link(r, m, 1.0).unwrap();
        g.add_link(m, x, 1.0).unwrap();
        g.add_link(x, s, 1.0).unwrap();
        let mut routers: Vec<Router> = (0..4).map(|_| Router::new(config())).collect();
        routers[s.index()].set_source();
        routers[s.index()].load_state(None, &[r], false);
        routers[r.index()].load_state(Some(s), &[m], false);
        routers[m.index()].load_state(Some(r), &[], true);
        routers[m.index()].install_recovery_plan(RecoveryPlan {
            path: vec![m, x, s],
            wait: SimTime::ZERO,
            path_delay: SimTime::ZERO,
        });
        let mut sim = NetSim::new(&g, routers);
        for &n in &ids {
            sim.with_node(n, |rt, ctx| rt.start_timers(ctx));
        }
        sim.run_until(SimTime::from_ms(60.0));
        let fail_at = sim.now();
        sim.fail_node_now(r);
        sim.run_until(SimTime::from_ms(400.0));
        let member = sim.node(m);
        let resumed = member
            .first_delivery_after(fail_at + SimTime::from_ms(1.0))
            .expect("service must restore through the detour");
        // Detection takes ~3 hello intervals; setup + data another few ms.
        let latency = (resumed.time - fail_at).as_ms();
        assert!(latency > 20.0 && latency < 120.0, "latency {latency}ms");
        assert_eq!(member.upstream(), Some(x));
        assert!(sim.node(x).is_on_tree());
    }

    #[test]
    fn global_detour_waits_for_reconvergence() {
        let mut g = Graph::with_nodes(4);
        let ids: Vec<_> = g.node_ids().collect();
        let [s, r, m, x] = [ids[0], ids[1], ids[2], ids[3]];
        g.add_link(s, r, 1.0).unwrap();
        g.add_link(r, m, 1.0).unwrap();
        g.add_link(m, x, 1.0).unwrap();
        g.add_link(x, s, 1.0).unwrap();
        let mut routers: Vec<Router> = (0..4).map(|_| Router::new(config())).collect();
        routers[s.index()].set_source();
        routers[s.index()].load_state(None, &[r], false);
        routers[r.index()].load_state(Some(s), &[m], false);
        routers[m.index()].load_state(Some(r), &[], true);
        let reconvergence = SimTime::from_ms(500.0);
        routers[m.index()].install_recovery_plan(RecoveryPlan {
            path: vec![m, x, s],
            wait: reconvergence,
            path_delay: SimTime::ZERO,
        });
        let mut sim = NetSim::new(&g, routers);
        for &n in &ids {
            sim.with_node(n, |rt, ctx| rt.start_timers(ctx));
        }
        sim.run_until(SimTime::from_ms(60.0));
        let fail_at = sim.now();
        sim.fail_node_now(r);
        sim.run_until(SimTime::from_ms(2000.0));
        let resumed = sim
            .node(m)
            .first_delivery_after(fail_at + SimTime::from_ms(1.0))
            .expect("service restores after reconvergence");
        let latency = (resumed.time - fail_at).as_ms();
        assert!(
            latency > 500.0,
            "global detour cannot beat the reconvergence delay ({latency}ms)"
        );
    }

    #[test]
    fn message_level_join_builds_state() {
        let (g, ids) = line();
        let mut routers: Vec<Router> = (0..3).map(|_| Router::new(config())).collect();
        routers[ids[0].index()].set_source();
        let mut sim = NetSim::new(&g, routers);
        sim.with_node(ids[0], |r, ctx| r.start_timers(ctx));
        // M joins via R toward S with an explicit Setup.
        sim.with_node(ids[2], |r, ctx| {
            r.initiate_setup(ctx, vec![ids[2], ids[1], ids[0]], true)
        });
        sim.run_until(SimTime::from_ms(100.0));
        assert!(sim.node(ids[1]).is_on_tree());
        assert_eq!(sim.node(ids[1]).upstream(), Some(ids[0]));
        assert_eq!(sim.node(ids[0]).downstream(), vec![ids[1]]);
        assert!(
            !sim.node(ids[2]).deliveries().is_empty(),
            "member receives data after joining"
        );
    }

    #[test]
    fn leave_req_removes_downstream() {
        let (g, ids) = line();
        let mut sim = loaded_line_sim(&g, &ids);
        sim.with_node(ids[1], |_, ctx| ctx.send(ids[0], ProtoMsg::LeaveReq));
        sim.run_until(SimTime::from_ms(5.0));
        assert!(sim.node(ids[0]).downstream().is_empty());
    }

    #[test]
    fn unrecoverable_without_a_plan() {
        let (g, ids) = line();
        let mut sim = loaded_line_sim(&g, &ids);
        sim.run_until(SimTime::from_ms(50.0));
        let fail_at = sim.now();
        sim.fail_node_now(ids[1]);
        sim.run_until(SimTime::from_ms(500.0));
        assert!(sim.node(ids[2]).is_recovering());
        assert!(sim
            .node(ids[2])
            .first_delivery_after(fail_at + SimTime::from_ms(1.0))
            .is_none());
    }

    #[test]
    fn data_from_non_upstream_is_ignored() {
        let (g, ids) = line();
        let mut sim = loaded_line_sim(&g, &ids);
        // Forge a data packet from the member up to the relay.
        sim.with_node(ids[2], |_, ctx| {
            ctx.send(ids[1], ProtoMsg::Data { seq: 999 })
        });
        sim.run_until(SimTime::from_ms(3.0));
        // The relay must not have forwarded seq 999 back down.
        assert!(sim.node(ids[2]).deliveries().iter().all(|d| d.seq != 999));
    }

    /// A 2-node graph whose single link is slower than the hello miss
    /// window (default config: 3 × 10 ms), so a grafted upstream cannot
    /// possibly heartbeat the grafting node before the window elapses.
    fn slow_pair() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::with_nodes(2);
        let ids: Vec<_> = g.node_ids().collect();
        g.add_link(ids[0], ids[1], 40.0).unwrap();
        (g, ids)
    }

    #[test]
    fn graft_handshake_outlives_miss_window_without_false_detection() {
        // The member grafts onto the source across a 40 ms link: the
        // Setup needs 40 ms to arrive and the first hello another 40 ms
        // back, so hello silence exceeds the 30 ms miss window long
        // before the upstream *can* heartbeat. The upstream check must
        // not declare the new upstream dead while the graft envelope is
        // still in flight — the retry budget, not hello silence, is the
        // reachability signal during the handshake.
        let (g, ids) = slow_pair();
        let [s, m] = [ids[0], ids[1]];
        let mut routers: Vec<Router> = (0..2).map(|_| Router::new(config())).collect();
        routers[s.index()].set_source();
        let mut sim = NetSim::new(&g, routers);
        sim.with_node(s, |r, ctx| r.start_timers(ctx));
        sim.with_node(m, |r, ctx| r.initiate_setup(ctx, vec![m, s], true));
        sim.run_until(SimTime::from_ms(300.0));
        let member = sim.node(m);
        assert!(
            !member.is_recovering(),
            "handshake silence must not be mistaken for upstream death"
        );
        assert_eq!(member.upstream(), Some(s));
        assert_eq!(sim.node(s).downstream(), vec![m]);
        assert!(
            member
                .first_delivery_after(SimTime::from_ms(80.0))
                .is_some(),
            "data must flow once the graft lands"
        );
    }

    /// Square S-R-M-X plus a second detour M-Y-S, for two-failure tests.
    fn pentagon() -> (Graph, [NodeId; 5]) {
        let mut g = Graph::with_nodes(5);
        let ids: Vec<_> = g.node_ids().collect();
        let [s, r, m, x, y] = [ids[0], ids[1], ids[2], ids[3], ids[4]];
        g.add_link(s, r, 1.0).unwrap();
        g.add_link(r, m, 1.0).unwrap();
        g.add_link(m, x, 1.0).unwrap();
        g.add_link(x, s, 1.0).unwrap();
        g.add_link(m, y, 1.0).unwrap();
        g.add_link(y, s, 1.0).unwrap();
        (g, [s, r, m, x, y])
    }

    fn loaded_pentagon(g: &Graph, nodes: &[NodeId; 5]) -> Vec<Router> {
        let [s, r, m, _, _] = *nodes;
        let mut routers: Vec<Router> = (0..5).map(|_| Router::new(config())).collect();
        routers[s.index()].set_source();
        routers[s.index()].load_state(None, &[r], false);
        routers[r.index()].load_state(Some(s), &[m], false);
        routers[m.index()].load_state(Some(r), &[], true);
        let _ = g;
        routers
    }

    #[test]
    fn stale_plan_is_discarded_after_second_failure() {
        // Two-failure regression (reactive mode): M's plan routes through
        // X with a reconvergence wait; X dies before the plan fires. The
        // plan must be discarded once the graft's retry budget proves X
        // dead — not re-executed against the dead topology by every
        // starvation check forever.
        let (g, nodes) = pentagon();
        let [s, r, m, x, _] = nodes;
        let mut routers = loaded_pentagon(&g, &nodes);
        routers[m.index()].install_recovery_plan(RecoveryPlan {
            path: vec![m, x, s],
            wait: SimTime::from_ms(500.0),
            path_delay: SimTime::ZERO,
        });
        let mut sim = NetSim::new(&g, routers);
        for &n in &nodes {
            sim.with_node(n, |rt, ctx| rt.start_timers(ctx));
        }
        sim.run_until(SimTime::from_ms(60.0));
        let fail_at = sim.now();
        sim.fail_node_now(r);
        // The planned detour dies before the reconvergence timer fires.
        sim.schedule_node_failure(SimTime::from_ms(100.0), x);
        sim.run_until(SimTime::from_ms(4000.0));
        let setups_then = sim.node(m).control_sent().setups;
        sim.run_until(SimTime::from_ms(8000.0));
        let member = sim.node(m);
        // Both paths to S are gone: nothing can restore service — but the
        // stale plan must not keep grafting into dead X either.
        assert!(member
            .first_delivery_after(fail_at + SimTime::from_ms(1.0))
            .is_none());
        assert!(member.is_recovering(), "stays latched with no viable plan");
        assert_eq!(
            member.control_sent().setups,
            setups_then,
            "grafts into the dead detour must stop once the plan is discarded"
        );
        assert_eq!(member.protection_counters().stale_discards, 1);
    }

    #[test]
    fn protection_fallback_restores_after_second_failure() {
        // Two-failure regression (protection mode): M holds a precomputed
        // fallback chain [via X, via Y]. X dies before R does, so the
        // primary plan is stale at activation time; the graft toward X
        // exhausts, X is marked dead, the primary is discarded and the
        // fallback through Y restores service.
        let (g, nodes) = pentagon();
        let [s, r, m, x, y] = nodes;
        let mut routers = loaded_pentagon(&g, &nodes);
        routers[m.index()].install_backup_plans(vec![
            RecoveryPlan {
                path: vec![m, x, s],
                wait: SimTime::ZERO,
                path_delay: SimTime::ZERO,
            },
            RecoveryPlan {
                path: vec![m, y, s],
                wait: SimTime::ZERO,
                path_delay: SimTime::ZERO,
            },
        ]);
        let mut sim = NetSim::new(&g, routers);
        for &n in &nodes {
            sim.with_node(n, |rt, ctx| rt.start_timers(ctx));
        }
        sim.run_until(SimTime::from_ms(40.0));
        sim.fail_node_now(x); // second-failure-to-be, before detection
        sim.run_until(SimTime::from_ms(60.0));
        let fail_at = sim.now();
        sim.fail_node_now(r);
        sim.run_until(SimTime::from_ms(4000.0));
        let member = sim.node(m);
        let resumed = member
            .first_delivery_after(fail_at + SimTime::from_ms(1.0))
            .expect("the fallback plan must restore service");
        assert_eq!(member.upstream(), Some(y));
        let counters = member.protection_counters();
        assert_eq!(counters.stale_discards, 1, "the plan through X staled");
        assert!(counters.activations >= 2, "primary then fallback executed");
        assert_eq!(counters.plans_held, 1, "only the plan through Y survives");
        // Restoration = detection (~30 ms) + retry budget toward X
        // (~1.1 s) + graft through Y.
        let latency = (resumed.time - fail_at).as_ms();
        assert!(latency < 2000.0, "latency {latency}ms");
    }

    #[test]
    fn mistaken_death_verdict_clears_on_contact() {
        // A neighbor marked dead by retry exhaustion comes back (the
        // failure was transient): hearing from it must clear the verdict
        // and restore the cached plan, and the starvation re-push must
        // then restore service through it.
        let (g, nodes) = pentagon();
        let [s, r, m, x, _] = nodes;
        let mut routers = loaded_pentagon(&g, &nodes);
        routers[m.index()].install_recovery_plan(RecoveryPlan {
            path: vec![m, x, s],
            wait: SimTime::ZERO,
            path_delay: SimTime::ZERO,
        });
        let mut sim = NetSim::new(&g, routers);
        for &n in &nodes {
            sim.with_node(n, |rt, ctx| rt.start_timers(ctx));
        }
        sim.run_until(SimTime::from_ms(40.0));
        sim.fail_node_now(x);
        sim.run_until(SimTime::from_ms(60.0));
        let fail_at = sim.now();
        sim.fail_node_now(r);
        // X repairs well after the graft toward it has exhausted its
        // retry budget and the plan has been discarded.
        sim.schedule_node_repair(SimTime::from_ms(4000.0), x);
        sim.run_until(SimTime::from_ms(3900.0));
        assert_eq!(sim.node(m).protection_counters().stale_discards, 1);
        assert!(sim
            .node(m)
            .first_delivery_after(fail_at + SimTime::from_ms(1.0))
            .is_none());
        // The repaired X announces itself to its former peer (an off-tree
        // node arms no timers, so the contact is injected explicitly).
        sim.run_until(SimTime::from_ms(4500.0));
        sim.with_node(x, |_, ctx| ctx.send(m, ProtoMsg::Hello));
        sim.run_until(SimTime::from_ms(10_000.0));
        let member = sim.node(m);
        assert!(
            member
                .first_delivery_after(SimTime::from_ms(4000.0))
                .is_some(),
            "service must restore through the repaired detour"
        );
        assert_eq!(member.upstream(), Some(x));
    }

    #[test]
    fn graft_handshake_deferral_is_bounded_by_retry_budget() {
        // Same slow pair, but the link dies right after the graft is
        // sent: every Setup copy is dropped, so the envelope eventually
        // exhausts its retry budget — at which point the deferral ends
        // and the upstream check declares the failure. The handshake
        // grace must not defer forever.
        let (g, ids) = slow_pair();
        let [s, m] = [ids[0], ids[1]];
        let link = g.link_between(s, m).unwrap();
        let mut routers: Vec<Router> = (0..2).map(|_| Router::new(config())).collect();
        routers[s.index()].set_source();
        let mut sim = NetSim::new(&g, routers);
        sim.with_node(s, |r, ctx| r.start_timers(ctx));
        sim.with_node(m, |r, ctx| r.initiate_setup(ctx, vec![m, s], true));
        sim.schedule_link_failure(SimTime::from_ms(1.0), link);
        // RTO is 4 × 40 ms; ×1.5 backoff over 8 retries exhausts the
        // budget within ~12 s of simulated time.
        sim.run_until(SimTime::from_ms(13_000.0));
        assert!(
            sim.node(m).is_recovering(),
            "exhaustion must end the handshake grace and surface the failure"
        );
    }
}
