//! Property tests for the network substrate.

use proptest::prelude::*;

use smrp_net::dijkstra::{self, Constraints, ShortestPathTree};
use smrp_net::traversal::{connected_components, is_connected, reachable_from};
use smrp_net::waxman::WaxmanConfig;
use smrp_net::{FailureScenario, Graph, LinkId, NodeId};

/// A small random graph built edge-by-edge from arbitrary pairs.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        2usize..12,
        proptest::collection::vec((0usize..12, 0usize..12, 1u32..50), 0..40),
    )
        .prop_map(|(n, edges)| {
            let mut g = Graph::with_nodes(n);
            for (a, b, w) in edges {
                let (a, b) = (a % n, b % n);
                if a == b {
                    continue;
                }
                let _ = g.add_link(NodeId::new(a), NodeId::new(b), w as f64);
            }
            g
        })
}

/// Floyd–Warshall oracle for all-pairs shortest distances.
fn floyd_warshall(g: &Graph) -> Vec<Vec<f64>> {
    let n = g.node_count();
    let mut d = vec![vec![f64::INFINITY; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0.0;
    }
    for l in g.link_ids() {
        let link = g.link(l);
        let (a, b) = (link.a().index(), link.b().index());
        d[a][b] = d[a][b].min(link.delay());
        d[b][a] = d[b][a].min(link.delay());
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let via = d[i][k] + d[k][j];
                if via < d[i][j] {
                    d[i][j] = via;
                }
            }
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dijkstra_matches_floyd_warshall(g in arb_graph()) {
        let oracle = floyd_warshall(&g);
        for src in g.node_ids() {
            let spt = ShortestPathTree::compute(&g, src);
            for dst in g.node_ids() {
                let expected = oracle[src.index()][dst.index()];
                match spt.distance(dst) {
                    Some(d) => prop_assert!((d - expected).abs() < 1e-9),
                    None => prop_assert!(expected.is_infinite()),
                }
                if let Some(p) = spt.path_to(dst) {
                    prop_assert!(p.validate(&g).is_ok());
                    prop_assert!((p.delay(&g) - expected).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn failures_never_shorten_paths(g in arb_graph(), kill in 0usize..30) {
        prop_assume!(g.link_count() > 0);
        let link = LinkId::new(kill % g.link_count());
        let scenario = FailureScenario::link(link);
        let src = NodeId::new(0);
        let before = ShortestPathTree::compute(&g, src);
        let after = ShortestPathTree::compute_constrained(
            &g, src, Constraints::avoiding_failures(&scenario));
        for dst in g.node_ids() {
            match (before.distance(dst), after.distance(dst)) {
                (Some(b), Some(a)) => prop_assert!(a + 1e-9 >= b),
                (None, Some(_)) => prop_assert!(false, "failure created a path"),
                _ => {}
            }
        }
    }

    #[test]
    fn components_partition_and_are_closed(g in arb_graph()) {
        let comps = connected_components(&g);
        let total: usize = comps.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.node_count());
        // Closure: no link crosses two components.
        let mut comp_of = vec![usize::MAX; g.node_count()];
        for (ci, comp) in comps.iter().enumerate() {
            for n in comp {
                comp_of[n.index()] = ci;
            }
        }
        for l in g.link_ids() {
            let link = g.link(l);
            prop_assert_eq!(comp_of[link.a().index()], comp_of[link.b().index()]);
        }
        prop_assert_eq!(is_connected(&g), comps.len() <= 1);
    }

    #[test]
    fn reachability_is_symmetric_on_undirected_graphs(
        g in arb_graph(),
        a in 0usize..12,
        b in 0usize..12,
    ) {
        let a = NodeId::new(a % g.node_count());
        let b = NodeId::new(b % g.node_count());
        let from_a = reachable_from(&g, a, Constraints::unrestricted());
        let from_b = reachable_from(&g, b, Constraints::unrestricted());
        prop_assert_eq!(from_a.contains(&b), from_b.contains(&a));
    }

    #[test]
    fn waxman_generation_is_seed_deterministic(seed in 0u64..5000) {
        let a = WaxmanConfig::new(30).alpha(0.25).seed(seed).generate().unwrap();
        let b = WaxmanConfig::new(30).alpha(0.25).seed(seed).generate().unwrap();
        prop_assert_eq!(a.graph().link_count(), b.graph().link_count());
        prop_assert!(is_connected(a.graph()));
    }

    #[test]
    fn multi_target_agrees_with_per_target_minimum(
        g in arb_graph(),
        src_i in 0usize..12,
        t1 in 0usize..12,
        t2 in 0usize..12,
    ) {
        let n = g.node_count();
        let src = NodeId::new(src_i % n);
        let targets = [NodeId::new(t1 % n), NodeId::new(t2 % n)];
        prop_assume!(!targets.contains(&src));
        let joint = dijkstra::shortest_path_to_any(
            &g, src, Constraints::unrestricted(), |x| targets.contains(&x));
        let spt = ShortestPathTree::compute(&g, src);
        let best: Option<f64> = targets
            .iter()
            .filter_map(|&t| spt.distance(t))
            .fold(None, |acc, d| Some(acc.map_or(d, |a: f64| a.min(d))));
        match (joint, best) {
            (Some(p), Some(d)) => prop_assert!((p.delay(&g) - d).abs() < 1e-9),
            (None, None) => {}
            (p, d) => prop_assert!(false, "mismatch: {p:?} vs {d:?}"),
        }
    }
}

/// Brute-force enumeration of all simple paths between two nodes, sorted
/// by (delay, node sequence) — the oracle for Yen's algorithm.
fn all_simple_paths(g: &Graph, src: NodeId, dst: NodeId) -> Vec<(f64, Vec<NodeId>)> {
    fn dfs(
        g: &Graph,
        cur: NodeId,
        dst: NodeId,
        visited: &mut Vec<bool>,
        path: &mut Vec<NodeId>,
        delay: f64,
        out: &mut Vec<(f64, Vec<NodeId>)>,
    ) {
        if cur == dst {
            out.push((delay, path.clone()));
            return;
        }
        for &(next, l) in g.adjacency(cur) {
            if visited[next.index()] {
                continue;
            }
            visited[next.index()] = true;
            path.push(next);
            dfs(g, next, dst, visited, path, delay + g.link(l).delay(), out);
            path.pop();
            visited[next.index()] = false;
        }
    }
    let mut out = Vec::new();
    let mut visited = vec![false; g.node_count()];
    visited[src.index()] = true;
    dfs(g, src, dst, &mut visited, &mut vec![src], 0.0, &mut out);
    out.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn yen_matches_brute_force_on_small_graphs(
        g in arb_graph(),
        src_i in 0usize..12,
        dst_i in 0usize..12,
        k in 1usize..6,
    ) {
        prop_assume!(g.node_count() <= 8);
        let src = NodeId::new(src_i % g.node_count());
        let dst = NodeId::new(dst_i % g.node_count());
        prop_assume!(src != dst);
        let oracle = all_simple_paths(&g, src, dst);
        let yen = smrp_net::kpaths::k_shortest_paths(&g, src, dst, k);
        prop_assert_eq!(yen.len(), k.min(oracle.len()));
        // Yen's i-th path delay equals the oracle's i-th smallest delay
        // (the exact node sequence may differ on ties).
        for (i, p) in yen.iter().enumerate() {
            prop_assert!(
                (p.delay(&g) - oracle[i].0).abs() < 1e-9,
                "k-path {} has delay {} but oracle says {}",
                i,
                p.delay(&g),
                oracle[i].0
            );
        }
    }
}
