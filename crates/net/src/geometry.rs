//! Plane geometry used by the topology generators.
//!
//! The Waxman model places nodes uniformly at random in a square and makes
//! the probability of a link between two nodes decay with their Euclidean
//! distance, so the substrate needs a small amount of 2-D geometry.

use serde::{Deserialize, Serialize};

/// A point in the unit-square plane used for node placement.
///
/// ```
/// use smrp_net::Point;
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point at `(x, y)`.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root when only
    /// comparisons are needed).
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

/// Maximum pairwise distance among a set of points.
///
/// The Waxman edge probability normalizes distances by the network's
/// "diameter" `L`; the original formulation uses the maximum pairwise
/// Euclidean distance.
///
/// Returns `0.0` for fewer than two points.
pub fn max_pairwise_distance(points: &[Point]) -> f64 {
    let mut max = 0.0f64;
    for (i, a) in points.iter().enumerate() {
        for b in &points[i + 1..] {
            let d = a.distance(*b);
            if d > max {
                max = d;
            }
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 5.5);
        assert!((a.distance(b) - b.distance(a)).abs() < 1e-12);
    }

    #[test]
    fn distance_matches_squared_distance() {
        let a = Point::new(0.3, 0.4);
        let b = Point::new(0.9, 0.1);
        let d = a.distance(b);
        assert!((d * d - a.distance_sq(b)).abs() < 1e-12);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Point::new(7.0, -2.0);
        assert_eq!(p.distance(p), 0.0);
    }

    #[test]
    fn max_pairwise_distance_of_triangle() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(10.0, 0.0),
        ];
        assert_eq!(max_pairwise_distance(&pts), 10.0);
    }

    #[test]
    fn max_pairwise_distance_degenerate_cases() {
        assert_eq!(max_pairwise_distance(&[]), 0.0);
        assert_eq!(max_pairwise_distance(&[Point::new(1.0, 1.0)]), 0.0);
    }
}
