//! Node-sequence paths through a [`Graph`].

use serde::{Deserialize, Serialize};

use crate::graph::Graph;
use crate::ids::{LinkId, NodeId};

/// A simple path expressed as the sequence of nodes it visits.
///
/// The sequence always contains at least one node; a single-node path has
/// zero delay and crosses no links. Every consecutive pair must be joined by
/// a link in the graph the path is evaluated against ([`Path::validate`]
/// checks this).
///
/// # Example
///
/// ```
/// use smrp_net::{Graph, Path};
///
/// # fn main() -> Result<(), smrp_net::NetError> {
/// let mut g = Graph::with_nodes(3);
/// let ids: Vec<_> = g.node_ids().collect();
/// g.add_link(ids[0], ids[1], 1.0)?;
/// g.add_link(ids[1], ids[2], 2.0)?;
/// let p = Path::new(vec![ids[0], ids[1], ids[2]]);
/// assert_eq!(p.delay(&g), 3.0);
/// assert_eq!(p.hop_count(), 2);
/// assert!(p.validate(&g).is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    nodes: Vec<NodeId>,
}

impl Path {
    /// Creates a path from a node sequence.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty; a path must visit at least one node.
    pub fn new(nodes: Vec<NodeId>) -> Self {
        assert!(!nodes.is_empty(), "a path must contain at least one node");
        Path { nodes }
    }

    /// The trivial path consisting of a single node.
    pub fn trivial(node: NodeId) -> Self {
        Path { nodes: vec![node] }
    }

    /// First node of the path.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last node of the path.
    #[inline]
    pub fn target(&self) -> NodeId {
        *self.nodes.last().expect("path is non-empty")
    }

    /// The visited nodes in order.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of links crossed (`nodes - 1`).
    #[inline]
    pub fn hop_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Whether the path visits `node`.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Iterator over consecutive node pairs.
    pub fn hops(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes.windows(2).map(|w| (w[0], w[1]))
    }

    /// Resolves the links crossed by this path against `graph`.
    ///
    /// # Panics
    ///
    /// Panics if a hop has no corresponding link; call [`Path::validate`]
    /// first for untrusted paths.
    pub fn links(&self, graph: &Graph) -> Vec<LinkId> {
        self.hops()
            .map(|(a, b)| {
                graph
                    .link_between(a, b)
                    .unwrap_or_else(|| panic!("no link between {a} and {b}"))
            })
            .collect()
    }

    /// Total delay of the path in `graph`.
    ///
    /// # Panics
    ///
    /// Panics if a hop has no corresponding link.
    pub fn delay(&self, graph: &Graph) -> f64 {
        self.hops()
            .map(|(a, b)| {
                let l = graph
                    .link_between(a, b)
                    .unwrap_or_else(|| panic!("no link between {a} and {b}"));
                graph.link(l).delay()
            })
            .sum()
    }

    /// Total cost of the path in `graph`.
    ///
    /// # Panics
    ///
    /// Panics if a hop has no corresponding link.
    pub fn cost(&self, graph: &Graph) -> f64 {
        self.hops()
            .map(|(a, b)| {
                let l = graph
                    .link_between(a, b)
                    .unwrap_or_else(|| panic!("no link between {a} and {b}"));
                graph.link(l).cost()
            })
            .sum()
    }

    /// Checks that every hop is a real link and that the path is simple
    /// (visits no node twice).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn validate(&self, graph: &Graph) -> Result<(), String> {
        for n in &self.nodes {
            if !graph.contains_node(*n) {
                return Err(format!("path visits unknown node {n}"));
            }
        }
        for (a, b) in self.hops() {
            if graph.link_between(a, b).is_none() {
                return Err(format!("path hop {a} -> {b} has no link"));
            }
        }
        let mut seen = vec![false; graph.node_count()];
        for n in &self.nodes {
            if seen[n.index()] {
                return Err(format!("path visits node {n} twice"));
            }
            seen[n.index()] = true;
        }
        Ok(())
    }

    /// Returns the reversed path.
    pub fn reversed(&self) -> Path {
        let mut nodes = self.nodes.clone();
        nodes.reverse();
        Path { nodes }
    }

    /// Concatenates `self` with `other`, which must start where `self` ends.
    ///
    /// # Panics
    ///
    /// Panics if `other.source() != self.target()`.
    pub fn join(&self, other: &Path) -> Path {
        assert_eq!(
            self.target(),
            other.source(),
            "joined path must start where the first ends"
        );
        let mut nodes = self.nodes.clone();
        nodes.extend_from_slice(&other.nodes[1..]);
        Path { nodes }
    }
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::with_nodes(4);
        let ids: Vec<_> = g.node_ids().collect();
        g.add_link(ids[0], ids[1], 1.0).unwrap();
        g.add_link(ids[1], ids[2], 2.0).unwrap();
        g.add_link(ids[2], ids[3], 4.0).unwrap();
        (g, ids)
    }

    #[test]
    fn delay_and_cost_sum_hops() {
        let (g, ids) = chain();
        let p = Path::new(ids.clone());
        assert_eq!(p.delay(&g), 7.0);
        assert_eq!(p.cost(&g), 7.0);
        assert_eq!(p.hop_count(), 3);
    }

    #[test]
    fn trivial_path_has_zero_delay() {
        let (g, ids) = chain();
        let p = Path::trivial(ids[0]);
        assert_eq!(p.delay(&g), 0.0);
        assert_eq!(p.hop_count(), 0);
        assert_eq!(p.source(), p.target());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_path_panics() {
        let _ = Path::new(vec![]);
    }

    #[test]
    fn validate_rejects_missing_link() {
        let (g, ids) = chain();
        let p = Path::new(vec![ids[0], ids[2]]);
        assert!(p.validate(&g).unwrap_err().contains("no link"));
    }

    #[test]
    fn validate_rejects_repeated_node() {
        let (g, ids) = chain();
        let p = Path::new(vec![ids[0], ids[1], ids[0]]);
        assert!(p.validate(&g).unwrap_err().contains("twice"));
    }

    #[test]
    fn validate_rejects_unknown_node() {
        let (g, _) = chain();
        let p = Path::new(vec![NodeId::new(99)]);
        assert!(p.validate(&g).unwrap_err().contains("unknown"));
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let (_, ids) = chain();
        let p = Path::new(ids.clone());
        let r = p.reversed();
        assert_eq!(r.source(), p.target());
        assert_eq!(r.target(), p.source());
        assert_eq!(r.reversed(), p);
    }

    #[test]
    fn join_concatenates() {
        let (_, ids) = chain();
        let p1 = Path::new(vec![ids[0], ids[1]]);
        let p2 = Path::new(vec![ids[1], ids[2], ids[3]]);
        let joined = p1.join(&p2);
        assert_eq!(joined.nodes(), &[ids[0], ids[1], ids[2], ids[3]]);
    }

    #[test]
    #[should_panic(expected = "must start where")]
    fn join_mismatched_panics() {
        let (_, ids) = chain();
        let p1 = Path::new(vec![ids[0], ids[1]]);
        let p2 = Path::new(vec![ids[2], ids[3]]);
        let _ = p1.join(&p2);
    }

    #[test]
    fn links_resolves_hops() {
        let (g, ids) = chain();
        let p = Path::new(ids.clone());
        let links = p.links(&g);
        assert_eq!(links.len(), 3);
        assert_eq!(g.link(links[0]).endpoints(), (ids[0], ids[1]));
    }

    #[test]
    fn cost_uses_cost_weights_not_delay() {
        let mut g = Graph::with_nodes(3);
        let ids: Vec<_> = g.node_ids().collect();
        g.add_link_weighted(
            ids[0],
            ids[1],
            crate::graph::LinkWeights {
                delay: 2.0,
                cost: 1.0,
            },
        )
        .unwrap();
        g.add_link_weighted(
            ids[1],
            ids[2],
            crate::graph::LinkWeights {
                delay: 3.0,
                cost: 1.0,
            },
        )
        .unwrap();
        let p = Path::new(ids.clone());
        assert_eq!(p.delay(&g), 5.0);
        assert_eq!(p.cost(&g), 2.0);
    }

    #[test]
    fn contains_checks_membership() {
        let (_, ids) = chain();
        let p = Path::new(vec![ids[0], ids[1]]);
        assert!(p.contains(ids[0]));
        assert!(p.contains(ids[1]));
        assert!(!p.contains(ids[3]));
    }

    #[test]
    fn display_renders_arrows() {
        let (_, ids) = chain();
        let p = Path::new(vec![ids[0], ids[1]]);
        assert_eq!(p.to_string(), "n0 -> n1");
    }
}
