//! Two-level transit-stub topology generator.
//!
//! §3.3.3 of the paper maps the hierarchical recovery architecture onto the
//! "current transit-stub Internet structure": a top-level *transit* domain
//! interconnects several *stub* domains, each of which clusters multicast
//! members by proximity. This module generates such topologies and exposes
//! the domain structure so the hierarchical protocol can confine failures to
//! a single recovery domain.
//!
//! The generator builds each domain as a random connected subgraph (random
//! spanning tree plus extra chords) with intra-domain delays much smaller
//! than the inter-domain (transit) link delays, matching the proximity
//! clustering assumption.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::NetError;
use crate::graph::Graph;
use crate::ids::NodeId;

/// Identifier of a recovery domain inside a [`TransitStubTopology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DomainId(u32);

impl DomainId {
    /// Creates a domain id from a raw index.
    pub fn new(index: usize) -> Self {
        DomainId(index as u32)
    }

    /// Raw dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for DomainId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Role of a domain in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomainKind {
    /// Top-level domain interconnecting stub gateways.
    Transit,
    /// Leaf domain containing multicast members.
    Stub,
}

/// One recovery domain: its nodes and its gateway into the parent level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Domain {
    id: DomainId,
    kind: DomainKind,
    nodes: Vec<NodeId>,
    /// For a stub domain: the stub-side border node, and the transit node it
    /// attaches to. `None` for the transit domain itself.
    attachment: Option<(NodeId, NodeId)>,
}

impl Domain {
    /// Domain id.
    pub fn id(&self) -> DomainId {
        self.id
    }

    /// Whether this is the transit domain or a stub.
    pub fn kind(&self) -> DomainKind {
        self.kind
    }

    /// Nodes belonging to this domain.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// `(stub_border, transit_attachment)` for stub domains.
    pub fn attachment(&self) -> Option<(NodeId, NodeId)> {
        self.attachment
    }

    /// Whether `node` belongs to this domain.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }
}

/// Configuration for transit-stub generation.
///
/// # Example
///
/// ```
/// use smrp_net::transit_stub::TransitStubConfig;
///
/// # fn main() -> Result<(), smrp_net::NetError> {
/// let topo = TransitStubConfig::new()
///     .transit_nodes(4)
///     .stubs_per_transit_node(2)
///     .stub_nodes(8)
///     .seed(5)
///     .generate()?;
/// assert_eq!(topo.domains().len(), 1 + 4 * 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TransitStubConfig {
    transit_nodes: usize,
    stubs_per_transit_node: usize,
    stub_nodes: usize,
    extra_edge_prob: f64,
    transit_delay: (f64, f64),
    stub_delay: (f64, f64),
    gateway_delay: (f64, f64),
    seed: u64,
}

impl Default for TransitStubConfig {
    fn default() -> Self {
        TransitStubConfig {
            transit_nodes: 4,
            stubs_per_transit_node: 2,
            stub_nodes: 8,
            extra_edge_prob: 0.3,
            transit_delay: (20.0, 50.0),
            stub_delay: (1.0, 5.0),
            gateway_delay: (5.0, 15.0),
            seed: 0,
        }
    }
}

impl TransitStubConfig {
    /// Starts from the default configuration (4 transit nodes × 2 stubs of
    /// 8 nodes).
    pub fn new() -> Self {
        TransitStubConfig::default()
    }

    /// Number of nodes in the transit domain.
    pub fn transit_nodes(mut self, n: usize) -> Self {
        self.transit_nodes = n;
        self
    }

    /// Number of stub domains attached to each transit node.
    pub fn stubs_per_transit_node(mut self, n: usize) -> Self {
        self.stubs_per_transit_node = n;
        self
    }

    /// Number of nodes per stub domain.
    pub fn stub_nodes(mut self, n: usize) -> Self {
        self.stub_nodes = n;
        self
    }

    /// Probability of each extra intra-domain chord beyond the spanning
    /// tree.
    pub fn extra_edge_prob(mut self, p: f64) -> Self {
        self.extra_edge_prob = p;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn validate(&self) -> Result<(), NetError> {
        if self.transit_nodes < 2 {
            return Err(NetError::InvalidParameter {
                name: "transit_nodes",
                reason: "at least two transit nodes are required",
            });
        }
        if self.stub_nodes < 1 {
            return Err(NetError::InvalidParameter {
                name: "stub_nodes",
                reason: "stub domains must contain at least one node",
            });
        }
        if !(0.0..=1.0).contains(&self.extra_edge_prob) {
            return Err(NetError::InvalidParameter {
                name: "extra_edge_prob",
                reason: "must lie in [0, 1]",
            });
        }
        Ok(())
    }

    /// Generates the topology.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidParameter`] for out-of-range settings.
    pub fn generate(&self) -> Result<TransitStubTopology, NetError> {
        self.validate()?;
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut graph = Graph::new();
        let mut domains = Vec::new();

        // Transit domain.
        let transit_nodes: Vec<NodeId> =
            (0..self.transit_nodes).map(|_| graph.add_node()).collect();
        connect_domain(
            &mut graph,
            &transit_nodes,
            self.transit_delay,
            self.extra_edge_prob,
            &mut rng,
        );
        domains.push(Domain {
            id: DomainId::new(0),
            kind: DomainKind::Transit,
            nodes: transit_nodes.clone(),
            attachment: None,
        });

        // Stub domains.
        for &t in &transit_nodes {
            for _ in 0..self.stubs_per_transit_node {
                let stub: Vec<NodeId> = (0..self.stub_nodes).map(|_| graph.add_node()).collect();
                connect_domain(
                    &mut graph,
                    &stub,
                    self.stub_delay,
                    self.extra_edge_prob,
                    &mut rng,
                );
                let border = stub[rng.gen_range(0..stub.len())];
                let delay = sample_delay(self.gateway_delay, &mut rng);
                graph
                    .add_link(border, t, delay)
                    .expect("gateway endpoints are distinct and fresh");
                domains.push(Domain {
                    id: DomainId::new(domains.len()),
                    kind: DomainKind::Stub,
                    nodes: stub,
                    attachment: Some((border, t)),
                });
            }
        }

        let mut node_domain = vec![DomainId::new(0); graph.node_count()];
        for d in &domains {
            for &n in &d.nodes {
                node_domain[n.index()] = d.id;
            }
        }

        Ok(TransitStubTopology {
            graph,
            domains,
            node_domain,
        })
    }
}

fn sample_delay(range: (f64, f64), rng: &mut SmallRng) -> f64 {
    if range.0 >= range.1 {
        range.0
    } else {
        rng.gen_range(range.0..range.1)
    }
}

/// Connects `nodes` into a random connected subgraph: a random spanning tree
/// plus chords drawn with `extra_edge_prob`.
fn connect_domain(
    graph: &mut Graph,
    nodes: &[NodeId],
    delay: (f64, f64),
    extra_edge_prob: f64,
    rng: &mut SmallRng,
) {
    // Random spanning tree: attach each node to a random earlier node.
    for (i, &n) in nodes.iter().enumerate().skip(1) {
        let parent = nodes[rng.gen_range(0..i)];
        let d = sample_delay(delay, rng);
        graph
            .add_link(n, parent, d)
            .expect("spanning-tree edges are fresh");
    }
    // Extra chords.
    for i in 0..nodes.len() {
        for j in (i + 1)..nodes.len() {
            if graph.link_between(nodes[i], nodes[j]).is_some() {
                continue;
            }
            if rng.gen::<f64>() < extra_edge_prob {
                let d = sample_delay(delay, rng);
                graph
                    .add_link(nodes[i], nodes[j], d)
                    .expect("chord endpoints are distinct and unlinked");
            }
        }
    }
}

/// A generated transit-stub topology with its domain structure.
#[derive(Debug, Clone)]
pub struct TransitStubTopology {
    graph: Graph,
    domains: Vec<Domain>,
    node_domain: Vec<DomainId>,
}

impl TransitStubTopology {
    /// The underlying flat graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// All domains; index 0 is always the transit domain.
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    /// The transit domain.
    pub fn transit_domain(&self) -> &Domain {
        &self.domains[0]
    }

    /// Stub domains only.
    pub fn stub_domains(&self) -> impl Iterator<Item = &Domain> {
        self.domains.iter().filter(|d| d.kind == DomainKind::Stub)
    }

    /// The domain a node belongs to.
    pub fn domain_of(&self, node: NodeId) -> DomainId {
        self.node_domain[node.index()]
    }

    /// Consumes the topology, returning the graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;

    fn sample() -> TransitStubTopology {
        TransitStubConfig::new()
            .transit_nodes(4)
            .stubs_per_transit_node(2)
            .stub_nodes(6)
            .seed(42)
            .generate()
            .unwrap()
    }

    #[test]
    fn topology_is_connected() {
        let t = sample();
        assert!(is_connected(t.graph()));
        assert_eq!(t.graph().node_count(), 4 + 4 * 2 * 6);
    }

    #[test]
    fn domain_zero_is_transit() {
        let t = sample();
        assert_eq!(t.transit_domain().kind(), DomainKind::Transit);
        assert_eq!(t.stub_domains().count(), 8);
    }

    #[test]
    fn every_node_has_a_domain() {
        let t = sample();
        for n in t.graph().node_ids() {
            let d = t.domain_of(n);
            assert!(t.domains()[d.index()].contains(n));
        }
    }

    #[test]
    fn stub_attachments_link_to_transit() {
        let t = sample();
        for stub in t.stub_domains() {
            let (border, attach) = stub.attachment().unwrap();
            assert!(stub.contains(border));
            assert!(t.transit_domain().contains(attach));
            assert!(t.graph().link_between(border, attach).is_some());
        }
    }

    #[test]
    fn stub_delays_are_smaller_than_transit_delays() {
        let t = sample();
        let g = t.graph();
        let transit = t.transit_domain();
        let mut max_stub: f64 = 0.0;
        let mut min_transit = f64::INFINITY;
        for l in g.link_ids() {
            let (a, b) = g.link(l).endpoints();
            let intra_transit = transit.contains(a) && transit.contains(b);
            let same_stub = t.domain_of(a) == t.domain_of(b) && !intra_transit;
            if intra_transit {
                min_transit = min_transit.min(g.link(l).delay());
            } else if same_stub {
                max_stub = max_stub.max(g.link(l).delay());
            }
        }
        assert!(
            max_stub < min_transit,
            "stub delays ({max_stub}) should stay below transit delays ({min_transit})"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = sample();
        let b = sample();
        assert_eq!(a.graph().link_count(), b.graph().link_count());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(TransitStubConfig::new()
            .transit_nodes(1)
            .generate()
            .is_err());
        assert!(TransitStubConfig::new().stub_nodes(0).generate().is_err());
        assert!(TransitStubConfig::new()
            .extra_edge_prob(1.5)
            .generate()
            .is_err());
    }

    #[test]
    fn single_node_stubs_are_allowed() {
        let t = TransitStubConfig::new()
            .transit_nodes(2)
            .stubs_per_transit_node(1)
            .stub_nodes(1)
            .seed(3)
            .generate()
            .unwrap();
        assert!(is_connected(t.graph()));
    }
}
