//! Yen's algorithm for k shortest loopless paths.
//!
//! The SMRP join procedure enumerates alternative routes toward the source;
//! Yen's algorithm provides a principled way to generate diverse loopless
//! candidates. It is also used by tests as an oracle for the constrained
//! Dijkstra queries.

use crate::dijkstra::{shortest_path_constrained, Constraints};
use crate::failure::FailureScenario;
use crate::graph::Graph;
use crate::ids::{LinkId, NodeId};
use crate::path::Path;

/// Computes up to `k` shortest loopless paths from `src` to `dst`, ordered
/// by increasing delay (ties broken by node sequence for determinism).
///
/// Returns fewer than `k` paths when the graph does not contain that many
/// distinct loopless paths; returns an empty vector when `dst` is
/// unreachable.
///
/// # Example
///
/// ```
/// use smrp_net::{Graph, kpaths::k_shortest_paths};
///
/// # fn main() -> Result<(), smrp_net::NetError> {
/// let mut g = Graph::with_nodes(3);
/// let ids: Vec<_> = g.node_ids().collect();
/// g.add_link(ids[0], ids[1], 1.0)?;
/// g.add_link(ids[1], ids[2], 1.0)?;
/// g.add_link(ids[0], ids[2], 5.0)?;
/// let paths = k_shortest_paths(&g, ids[0], ids[2], 3);
/// assert_eq!(paths.len(), 2);
/// assert_eq!(paths[0].delay(&g), 2.0);
/// assert_eq!(paths[1].delay(&g), 5.0);
/// # Ok(())
/// # }
/// ```
pub fn k_shortest_paths(graph: &Graph, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
    k_shortest_paths_avoiding(graph, src, dst, k, &FailureScenario::none())
}

/// Like [`k_shortest_paths`] but restricted to components that survive
/// `failures`.
pub fn k_shortest_paths_avoiding(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    k: usize,
    failures: &FailureScenario,
) -> Vec<Path> {
    if k == 0 {
        return Vec::new();
    }
    let base = Constraints::avoiding_failures(failures);
    let mut accepted: Vec<Path> = Vec::new();
    let Some(first) = shortest_path_constrained(graph, src, dst, base) else {
        return accepted;
    };
    accepted.push(first);

    // Candidate pool of (delay, path), kept sorted; BinaryHeap over f64
    // would need a wrapper, and k is small in practice.
    let mut candidates: Vec<(f64, Path)> = Vec::new();

    while accepted.len() < k {
        let last = accepted.last().expect("at least one accepted path").clone();
        let last_nodes = last.nodes();

        for i in 0..last_nodes.len() - 1 {
            let spur_node = last_nodes[i];
            let root_nodes = &last_nodes[..=i];

            // Links leaving the spur node along any accepted path sharing
            // this root must be removed so the spur deviates.
            let mut banned_links: Vec<LinkId> = Vec::new();
            for p in &accepted {
                let nodes = p.nodes();
                if nodes.len() > i && nodes[..=i] == *root_nodes {
                    if let Some(l) = graph.link_between(nodes[i], nodes[i + 1]) {
                        if !banned_links.contains(&l) {
                            banned_links.push(l);
                        }
                    }
                }
            }
            // Root nodes other than the spur node must not be revisited.
            let banned_nodes: Vec<NodeId> = root_nodes[..i].to_vec();

            let constraints = Constraints {
                failures: Some(failures),
                forbidden_nodes: &banned_nodes,
                forbidden_links: &banned_links,
            };
            let Some(spur) = shortest_path_constrained(graph, spur_node, dst, constraints) else {
                continue;
            };

            let root = Path::new(root_nodes.to_vec());
            let total = root.join(&spur);
            if total.validate(graph).is_err() {
                continue;
            }
            let d = total.delay(graph);
            let duplicate =
                accepted.contains(&total) || candidates.iter().any(|(_, p)| *p == total);
            if !duplicate {
                candidates.push((d, total));
            }
        }

        if candidates.is_empty() {
            break;
        }
        // Pick the candidate with minimal delay; break ties by node
        // sequence for determinism.
        let best_idx = candidates
            .iter()
            .enumerate()
            .min_by(|(_, (da, pa)), (_, (db, pb))| {
                da.total_cmp(db).then_with(|| pa.nodes().cmp(pb.nodes()))
            })
            .map(|(i, _)| i)
            .expect("non-empty candidates");
        let (_, best) = candidates.swap_remove(best_idx);
        accepted.push(best);
    }

    accepted
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond: two equal-ish routes plus a long direct edge.
    fn diamond() -> (Graph, [NodeId; 4]) {
        let mut g = Graph::with_nodes(4);
        let ids: Vec<_> = g.node_ids().collect();
        let [s, a, b, t] = [ids[0], ids[1], ids[2], ids[3]];
        g.add_link(s, a, 1.0).unwrap();
        g.add_link(a, t, 1.0).unwrap();
        g.add_link(s, b, 1.5).unwrap();
        g.add_link(b, t, 1.5).unwrap();
        g.add_link(s, t, 5.0).unwrap();
        (g, [s, a, b, t])
    }

    #[test]
    fn paths_are_ordered_by_delay() {
        let (g, [s, a, b, t]) = diamond();
        let ps = k_shortest_paths(&g, s, t, 3);
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].nodes(), &[s, a, t]);
        assert_eq!(ps[1].nodes(), &[s, b, t]);
        assert_eq!(ps[2].nodes(), &[s, t]);
        let d: Vec<f64> = ps.iter().map(|p| p.delay(&g)).collect();
        assert!(d.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn requesting_more_than_exist_returns_all() {
        let (g, [s, _, _, t]) = diamond();
        let ps = k_shortest_paths(&g, s, t, 100);
        // The diamond has exactly 3 loopless s-t paths: via a, via b, direct.
        assert_eq!(ps.len(), 3);
        // All distinct and valid.
        for (i, p) in ps.iter().enumerate() {
            assert!(p.validate(&g).is_ok());
            for q in &ps[i + 1..] {
                assert_ne!(p, q);
            }
        }
    }

    #[test]
    fn k_zero_returns_nothing() {
        let (g, [s, _, _, t]) = diamond();
        assert!(k_shortest_paths(&g, s, t, 0).is_empty());
    }

    #[test]
    fn unreachable_returns_empty() {
        let g = Graph::with_nodes(2);
        let ids: Vec<_> = g.node_ids().collect();
        assert!(k_shortest_paths(&g, ids[0], ids[1], 3).is_empty());
    }

    #[test]
    fn failure_restricts_path_set() {
        let (g, [s, a, _, t]) = diamond();
        let l_at = g.link_between(a, t).unwrap();
        let f = FailureScenario::link(l_at);
        let ps = k_shortest_paths_avoiding(&g, s, t, 5, &f);
        assert!(ps.iter().all(|p| !p.links(&g).contains(&l_at)));
        assert!(!ps.is_empty());
    }

    #[test]
    fn loopless_property_holds_on_larger_graph() {
        // 3x3 grid.
        let mut g = Graph::with_nodes(9);
        let id = |r: usize, c: usize| NodeId::new(r * 3 + c);
        for r in 0..3 {
            for c in 0..3 {
                if c + 1 < 3 {
                    g.add_link(id(r, c), id(r, c + 1), 1.0).unwrap();
                }
                if r + 1 < 3 {
                    g.add_link(id(r, c), id(r + 1, c), 1.0).unwrap();
                }
            }
        }
        let ps = k_shortest_paths(&g, id(0, 0), id(2, 2), 8);
        assert_eq!(ps.len(), 8);
        for p in &ps {
            assert!(p.validate(&g).is_ok(), "path revisits a node or fake link");
        }
    }
}
