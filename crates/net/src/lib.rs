#![warn(missing_docs)]

//! Network substrate for the SMRP reproduction.
//!
//! This crate provides everything the SMRP protocol (`smrp-core`) and the
//! discrete-event protocol simulation (`smrp-sim`/`smrp-proto`) need from
//! the network layer:
//!
//! * an arena-style undirected weighted [`Graph`] with typed [`NodeId`] /
//!   [`LinkId`] handles,
//! * shortest-path machinery ([`dijkstra`]): plain, avoid-set constrained and
//!   multi-target Dijkstra, plus Yen's k-shortest loopless paths
//!   ([`kpaths`]),
//! * random topology generators matching the paper's simulation setup:
//!   the Waxman model ([`waxman`], GT-ITM's "pure random" model) and a
//!   2-level transit-stub model ([`transit_stub`]) for the hierarchical
//!   recovery architecture of §3.3.3,
//! * persistent-failure scenarios ([`failure`]) that mask out links/nodes
//!   without mutating the underlying graph,
//! * batch backup-detour precomputation with incremental refresh
//!   ([`backup`]), the network-layer half of proactive protection.
//!
//! All randomness is funneled through seeded [`rand::rngs::SmallRng`] values
//! so every topology and experiment in this repository is reproducible.
//!
//! # Example
//!
//! ```
//! use smrp_net::{waxman::WaxmanConfig, dijkstra};
//!
//! # fn main() -> Result<(), smrp_net::NetError> {
//! let graph = WaxmanConfig::new(100).alpha(0.2).seed(42).generate()?.into_graph();
//! let src = graph.node_ids().next().unwrap();
//! let dst = graph.node_ids().last().unwrap();
//! let path = dijkstra::shortest_path(&graph, src, dst).expect("connected");
//! assert!(path.delay(&graph) > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod backup;
pub mod dijkstra;
pub mod failure;
pub mod geometry;
pub mod graph;
pub mod ids;
pub mod import;
pub mod kpaths;
pub mod nlevel;
pub mod path;
pub mod transit_stub;
pub mod traversal;
pub mod waxman;

mod error;

pub use error::NetError;
pub use failure::FailureScenario;
pub use geometry::Point;
pub use graph::{Graph, Link, LinkWeights};
pub use ids::{GroupId, LinkId, NodeId};
pub use path::Path;
