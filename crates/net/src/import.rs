//! Real-topology import (the paper's stated future work: "we are
//! collecting Internet's topology to evaluate SMRP's applicability to real
//! networks").
//!
//! Two pieces:
//!
//! * [`parse_edge_list`] — a plain-text edge-list loader
//!   (`u v delay [cost]` per line, `#` comments), the lingua franca of
//!   topology datasets (Rocketfuel, Internet Topology Zoo exports);
//! * bundled reference backbones — [`abilene`] (the Internet2/Abilene
//!   research backbone, 11 PoPs) and [`geant`] (a GÉANT-like European
//!   research backbone, 23 PoPs) with delays proportional to great-circle
//!   distances, so the experiments run on *real* router-level structure
//!   out of the box.

use crate::error::NetError;
use crate::graph::{Graph, LinkWeights};
use crate::ids::NodeId;

/// Parses a whitespace-separated edge list into a graph.
///
/// Each non-empty, non-comment line is `u v delay [cost]` with `u`/`v`
/// dense non-negative node indices. Nodes are created up to the largest
/// index seen. When `cost` is omitted it defaults to `1` (unit cost, the
/// convention of the bundled experiments).
///
/// # Errors
///
/// Returns [`NetError::InvalidParameter`] on malformed lines and the usual
/// graph errors on duplicate links, self-loops or bad weights.
///
/// # Example
///
/// ```
/// use smrp_net::import::parse_edge_list;
///
/// # fn main() -> Result<(), smrp_net::NetError> {
/// let g = parse_edge_list("# tiny triangle\n0 1 2.5\n1 2 1.0 3.0\n2 0 2.0\n")?;
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.link_count(), 3);
/// # Ok(())
/// # }
/// ```
pub fn parse_edge_list(text: &str) -> Result<Graph, NetError> {
    let mut edges: Vec<(usize, usize, f64, f64)> = Vec::new();
    let mut max_node = 0usize;
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if !(3..=4).contains(&fields.len()) {
            return Err(NetError::InvalidParameter {
                name: "edge_list",
                reason: "each line must be `u v delay [cost]`",
            });
        }
        let parse_idx = |s: &str| {
            s.parse::<usize>().map_err(|_| NetError::InvalidParameter {
                name: "edge_list",
                reason: "node indices must be non-negative integers",
            })
        };
        let parse_w = |s: &str| {
            s.parse::<f64>().map_err(|_| NetError::InvalidParameter {
                name: "edge_list",
                reason: "weights must be numbers",
            })
        };
        let u = parse_idx(fields[0])?;
        let v = parse_idx(fields[1])?;
        let delay = parse_w(fields[2])?;
        let cost = if fields.len() == 4 {
            parse_w(fields[3])?
        } else {
            1.0
        };
        max_node = max_node.max(u).max(v);
        edges.push((u, v, delay, cost));
    }
    let mut graph = Graph::with_nodes(max_node + 1);
    for (u, v, delay, cost) in edges {
        graph.add_link_weighted(NodeId::new(u), NodeId::new(v), LinkWeights { delay, cost })?;
    }
    Ok(graph)
}

/// The Abilene (Internet2) research backbone: 11 PoPs, 14 links.
///
/// Delays are propagation estimates in milliseconds from PoP great-circle
/// distances; costs are unit. Node order: 0 Seattle, 1 Sunnyvale,
/// 2 Los Angeles, 3 Denver, 4 Kansas City, 5 Houston, 6 Chicago,
/// 7 Indianapolis, 8 Atlanta, 9 Washington DC, 10 New York.
pub fn abilene() -> Graph {
    parse_edge_list(
        "\
        # Abilene backbone (delays ~ propagation ms, unit cost)\n\
        0 1 5.4   # Seattle - Sunnyvale\n\
        0 3 8.2   # Seattle - Denver\n\
        1 2 2.6   # Sunnyvale - Los Angeles\n\
        1 3 7.6   # Sunnyvale - Denver\n\
        2 5 11.1  # Los Angeles - Houston\n\
        3 4 4.5   # Denver - Kansas City\n\
        4 5 5.9   # Kansas City - Houston\n\
        4 7 3.5   # Kansas City - Indianapolis\n\
        5 8 5.7   # Houston - Atlanta\n\
        6 7 1.3   # Chicago - Indianapolis\n\
        6 10 5.7  # Chicago - New York\n\
        7 8 3.4   # Indianapolis - Atlanta\n\
        8 9 4.3   # Atlanta - Washington DC\n\
        9 10 1.6  # Washington DC - New York\n",
    )
    .expect("bundled topology is well-formed")
}

/// A GÉANT-like European research backbone: 23 PoPs, 38 links.
///
/// Delays are propagation estimates in milliseconds; costs are unit.
/// Node order: 0 London, 1 Paris, 2 Amsterdam, 3 Brussels, 4 Frankfurt,
/// 5 Geneva, 6 Madrid, 7 Lisbon, 8 Milan, 9 Vienna, 10 Prague,
/// 11 Berlin, 12 Copenhagen, 13 Stockholm, 14 Helsinki, 15 Warsaw,
/// 16 Budapest, 17 Zagreb, 18 Rome, 19 Athens, 20 Dublin, 21 Oslo,
/// 22 Bucharest.
pub fn geant() -> Graph {
    parse_edge_list(
        "\
        # GEANT-like European backbone\n\
        0 1 1.7    # London - Paris\n\
        0 2 1.8    # London - Amsterdam\n\
        0 20 2.3   # London - Dublin\n\
        20 1 3.0   # Dublin - Paris\n\
        0 4 3.2    # London - Frankfurt\n\
        1 3 1.3    # Paris - Brussels\n\
        1 5 2.0    # Paris - Geneva\n\
        1 6 5.3    # Paris - Madrid\n\
        2 3 0.9    # Amsterdam - Brussels\n\
        2 4 1.8    # Amsterdam - Frankfurt\n\
        2 12 3.1   # Amsterdam - Copenhagen\n\
        3 4 1.6    # Brussels - Frankfurt\n\
        4 5 2.3    # Frankfurt - Geneva\n\
        4 10 2.1   # Frankfurt - Prague\n\
        4 11 2.2   # Frankfurt - Berlin\n\
        4 16 4.1   # Frankfurt - Budapest\n\
        5 8 1.7    # Geneva - Milan\n\
        5 6 5.1    # Geneva - Madrid\n\
        6 7 2.5    # Madrid - Lisbon\n\
        7 0 7.9    # Lisbon - London\n\
        8 9 3.1    # Milan - Vienna\n\
        8 18 2.4   # Milan - Rome\n\
        9 10 1.3   # Vienna - Prague\n\
        9 16 1.1   # Vienna - Budapest\n\
        9 17 1.4   # Vienna - Zagreb\n\
        10 11 1.4  # Prague - Berlin\n\
        10 15 2.6  # Prague - Warsaw\n\
        11 12 1.8  # Berlin - Copenhagen\n\
        11 15 2.6  # Berlin - Warsaw\n\
        12 13 2.6  # Copenhagen - Stockholm\n\
        12 21 2.4  # Copenhagen - Oslo\n\
        13 14 2.0  # Stockholm - Helsinki\n\
        13 21 2.1  # Stockholm - Oslo\n\
        14 15 4.6  # Helsinki - Warsaw\n\
        16 22 3.2  # Budapest - Bucharest\n\
        17 18 2.6  # Zagreb - Rome\n\
        18 19 5.3  # Rome - Athens\n\
        19 22 3.7  # Athens - Bucharest\n",
    )
    .expect("bundled topology is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;

    #[test]
    fn parses_minimal_edge_list() {
        let g = parse_edge_list("0 1 2.0\n").unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.link_count(), 1);
        let l = g.link(g.link_ids().next().unwrap());
        assert_eq!(l.delay(), 2.0);
        assert_eq!(l.cost(), 1.0);
    }

    #[test]
    fn explicit_cost_is_honored() {
        let g = parse_edge_list("0 1 2.0 7.5\n").unwrap();
        let l = g.link(g.link_ids().next().unwrap());
        assert_eq!(l.cost(), 7.5);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let g = parse_edge_list("# header\n\n0 1 1.0 # trailing comment\n\n").unwrap();
        assert_eq!(g.link_count(), 1);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_edge_list("0 1\n").is_err());
        assert!(parse_edge_list("0 1 2.0 3.0 4.0\n").is_err());
        assert!(parse_edge_list("a b 1.0\n").is_err());
        assert!(parse_edge_list("0 1 zebra\n").is_err());
        // Self-loop via the graph layer.
        assert!(parse_edge_list("1 1 1.0\n").is_err());
        // Duplicate link via the graph layer.
        assert!(parse_edge_list("0 1 1.0\n1 0 2.0\n").is_err());
    }

    #[test]
    fn isolated_high_index_creates_nodes() {
        let g = parse_edge_list("0 5 1.0\n").unwrap();
        assert_eq!(g.node_count(), 6);
    }

    #[test]
    fn abilene_shape() {
        let g = abilene();
        assert_eq!(g.node_count(), 11);
        assert_eq!(g.link_count(), 14);
        assert!(is_connected(&g));
        // Every PoP has degree >= 2 (it is a resilient backbone).
        for n in g.node_ids() {
            assert!(g.degree(n) >= 2, "{n} has degree {}", g.degree(n));
        }
    }

    #[test]
    fn geant_shape() {
        let g = geant();
        assert_eq!(g.node_count(), 23);
        assert_eq!(g.link_count(), 38);
        assert!(is_connected(&g));
        for n in g.node_ids() {
            assert!(g.degree(n) >= 2, "{n} has degree {}", g.degree(n));
        }
    }
}
