//! The undirected weighted graph at the heart of the substrate.
//!
//! Nodes and links live in arenas and are addressed through [`NodeId`] and
//! [`LinkId`]. Each link carries two weights, mirroring the paper's
//! evaluation metrics:
//!
//! * **delay** — used for path lengths, end-to-end delay `D_{S,R}` and the
//!   recovery distance `RD_R`;
//! * **cost** — summed over tree links to produce the tree cost `Cost_T`.
//!
//! The paper's figures annotate links with a single number acting as both,
//! so generators default to `cost == delay`, but the two are kept separate so
//! unit-cost experiments ("tree cost as link count") remain expressible.

use serde::{Deserialize, Serialize};

use crate::error::NetError;
use crate::geometry::Point;
use crate::ids::{LinkId, NodeId};

/// Weights attached to a link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkWeights {
    /// Propagation delay of the link (the paper's per-link number).
    pub delay: f64,
    /// Cost of including the link in a multicast tree.
    pub cost: f64,
}

impl LinkWeights {
    /// Creates weights with identical delay and cost, the paper's default.
    #[inline]
    pub fn symmetric(value: f64) -> Self {
        LinkWeights {
            delay: value,
            cost: value,
        }
    }
}

/// An undirected link between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    a: NodeId,
    b: NodeId,
    weights: LinkWeights,
}

impl Link {
    /// One endpoint of the link (the lower node id).
    #[inline]
    pub fn a(&self) -> NodeId {
        self.a
    }

    /// The other endpoint of the link (the higher node id).
    #[inline]
    pub fn b(&self) -> NodeId {
        self.b
    }

    /// Both endpoints as a pair `(a, b)` with `a < b`.
    #[inline]
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.a, self.b)
    }

    /// Propagation delay of the link.
    #[inline]
    pub fn delay(&self) -> f64 {
        self.weights.delay
    }

    /// Tree-cost contribution of the link.
    #[inline]
    pub fn cost(&self) -> f64 {
        self.weights.cost
    }

    /// Given one endpoint, returns the opposite endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint of this link.
    #[inline]
    pub fn opposite(&self, node: NodeId) -> NodeId {
        if node == self.a {
            self.b
        } else if node == self.b {
            self.a
        } else {
            panic!("node {node} is not an endpoint of this link");
        }
    }

    /// Whether `node` is one of the two endpoints.
    #[inline]
    pub fn touches(&self, node: NodeId) -> bool {
        node == self.a || node == self.b
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct NodeRecord {
    position: Option<Point>,
    /// Adjacency: (neighbor, connecting link).
    adjacency: Vec<(NodeId, LinkId)>,
}

/// An undirected weighted graph.
///
/// Construction is additive only: experiments never remove nodes or links
/// from a topology; persistent failures are expressed with a
/// [`crate::FailureScenario`] mask layered on top instead, so that one graph
/// can be shared by many failure cases.
///
/// # Example
///
/// ```
/// use smrp_net::Graph;
///
/// # fn main() -> Result<(), smrp_net::NetError> {
/// let mut g = Graph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let l = g.add_link(a, b, 2.5)?;
/// assert_eq!(g.link(l).opposite(a), b);
/// assert_eq!(g.degree(a), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    nodes: Vec<NodeRecord>,
    links: Vec<Link>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates a graph with `n` isolated nodes and no positions.
    pub fn with_nodes(n: usize) -> Self {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_node();
        }
        g
    }

    /// Adds a node without a plane position and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(NodeRecord {
            position: None,
            adjacency: Vec::new(),
        });
        id
    }

    /// Adds a node placed at `position` and returns its id.
    pub fn add_node_at(&mut self, position: Point) -> NodeId {
        let id = self.add_node();
        self.nodes[id.index()].position = Some(position);
        id
    }

    /// Adds an undirected link with symmetric delay/cost `weight`.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is unknown, the endpoints are
    /// equal (self-loop), a link between them already exists, or the weight
    /// is not finite and positive.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, weight: f64) -> Result<LinkId, NetError> {
        self.add_link_weighted(a, b, LinkWeights::symmetric(weight))
    }

    /// Adds an undirected link with explicit delay and cost.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Graph::add_link`].
    pub fn add_link_weighted(
        &mut self,
        a: NodeId,
        b: NodeId,
        weights: LinkWeights,
    ) -> Result<LinkId, NetError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(NetError::SelfLoop(a));
        }
        for w in [weights.delay, weights.cost] {
            if !w.is_finite() || w <= 0.0 {
                return Err(NetError::InvalidWeight(w));
            }
        }
        if self.link_between(a, b).is_some() {
            return Err(NetError::DuplicateLink(a, b));
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let id = LinkId::new(self.links.len());
        self.links.push(Link {
            a: lo,
            b: hi,
            weights,
        });
        self.nodes[a.index()].adjacency.push((b, id));
        self.nodes[b.index()].adjacency.push((a, id));
        Ok(id)
    }

    fn check_node(&self, n: NodeId) -> Result<(), NetError> {
        if n.index() < self.nodes.len() {
            Ok(())
        } else {
            Err(NetError::UnknownNode(n))
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    #[inline]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Whether the graph contains `node`.
    #[inline]
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.nodes.len()
    }

    /// Iterator over all node ids in index order.
    pub fn node_ids(&self) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator {
        (0..self.nodes.len()).map(NodeId::new)
    }

    /// Iterator over all link ids in index order.
    pub fn link_ids(&self) -> impl DoubleEndedIterator<Item = LinkId> + ExactSizeIterator {
        (0..self.links.len()).map(LinkId::new)
    }

    /// Returns the link record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Plane position of `node`, if it was placed with
    /// [`Graph::add_node_at`].
    #[inline]
    pub fn position(&self, node: NodeId) -> Option<Point> {
        self.nodes[node.index()].position
    }

    /// Adjacency list of `node` as `(neighbor, link)` pairs in insertion
    /// order.
    #[inline]
    pub fn adjacency(&self, node: NodeId) -> &[(NodeId, LinkId)] {
        &self.nodes[node.index()].adjacency
    }

    /// Iterator over the neighbors of `node`.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adjacency(node).iter().map(|&(n, _)| n)
    }

    /// Degree (number of incident links) of `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency(node).len()
    }

    /// The link connecting `a` and `b`, if any.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        if !self.contains_node(a) || !self.contains_node(b) {
            return None;
        }
        // Scan the smaller adjacency list.
        let (probe, target) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        self.adjacency(probe)
            .iter()
            .find(|&&(n, _)| n == target)
            .map(|&(_, l)| l)
    }

    /// Delay of the link between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownLink`] if no such link exists (reported
    /// with a placeholder id since no id exists).
    pub fn delay_between(&self, a: NodeId, b: NodeId) -> Result<f64, NetError> {
        self.link_between(a, b)
            .map(|l| self.link(l).delay())
            .ok_or(NetError::UnknownLink(LinkId::new(usize::MAX >> 8)))
    }

    /// Average node degree `2·|E| / |V|`.
    ///
    /// Figure 9 of the paper annotates each `α` value with this quantity.
    pub fn average_degree(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        2.0 * self.links.len() as f64 / self.nodes.len() as f64
    }

    /// Sum of link delays over the whole graph (diagnostic).
    pub fn total_delay(&self) -> f64 {
        self.links.iter().map(Link::delay).sum()
    }

    /// Extracts the subgraph induced by `nodes`, preserving positions and
    /// weights.
    ///
    /// Returns the new graph plus the mapping from new node ids to the
    /// original ids (`mapping[new.index()] == old`). Nodes are renumbered
    /// densely in the order given; duplicate entries are ignored after the
    /// first occurrence.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut sub = Graph::new();
        let mut mapping = Vec::new();
        let mut old_to_new: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        for &old in nodes {
            if old_to_new[old.index()].is_some() {
                continue;
            }
            let new = match self.position(old) {
                Some(p) => sub.add_node_at(p),
                None => sub.add_node(),
            };
            old_to_new[old.index()] = Some(new);
            mapping.push(old);
        }
        for link in &self.links {
            let (Some(a), Some(b)) = (old_to_new[link.a.index()], old_to_new[link.b.index()])
            else {
                continue;
            };
            sub.add_link_weighted(a, b, link.weights)
                .expect("induced links are fresh and valid");
        }
        (sub, mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Graph, [NodeId; 3], [LinkId; 3]) {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let ab = g.add_link(a, b, 1.0).unwrap();
        let bc = g.add_link(b, c, 2.0).unwrap();
        let ca = g.add_link(c, a, 3.0).unwrap();
        (g, [a, b, c], [ab, bc, ca])
    }

    #[test]
    fn counts_and_ids_are_dense() {
        let (g, nodes, links) = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.link_count(), 3);
        assert_eq!(g.node_ids().collect::<Vec<_>>(), nodes.to_vec());
        assert_eq!(g.link_ids().collect::<Vec<_>>(), links.to_vec());
    }

    #[test]
    fn adjacency_is_symmetric() {
        let (g, [a, b, c], _) = triangle();
        assert!(g.neighbors(a).any(|n| n == b));
        assert!(g.neighbors(b).any(|n| n == a));
        assert_eq!(g.degree(c), 2);
    }

    #[test]
    fn link_between_finds_either_direction() {
        let (g, [a, b, _], [ab, ..]) = triangle();
        assert_eq!(g.link_between(a, b), Some(ab));
        assert_eq!(g.link_between(b, a), Some(ab));
    }

    #[test]
    fn link_between_missing_is_none() {
        let mut g = Graph::with_nodes(3);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        assert_eq!(g.link_between(a, b), None);
        g.add_link(a, b, 1.0).unwrap();
        assert_eq!(g.link_between(a, NodeId::new(2)), None);
        assert_eq!(g.link_between(NodeId::new(9), a), None);
    }

    #[test]
    fn self_loops_are_rejected() {
        let mut g = Graph::with_nodes(1);
        let a = NodeId::new(0);
        assert_eq!(g.add_link(a, a, 1.0), Err(NetError::SelfLoop(a)));
    }

    #[test]
    fn duplicate_links_are_rejected() {
        let mut g = Graph::with_nodes(2);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        g.add_link(a, b, 1.0).unwrap();
        assert!(matches!(
            g.add_link(b, a, 2.0),
            Err(NetError::DuplicateLink(_, _))
        ));
    }

    #[test]
    fn nonpositive_and_nonfinite_weights_are_rejected() {
        let mut g = Graph::with_nodes(2);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                g.add_link(a, b, bad),
                Err(NetError::InvalidWeight(_))
            ));
        }
    }

    #[test]
    fn unknown_endpoints_are_rejected() {
        let mut g = Graph::with_nodes(1);
        let a = NodeId::new(0);
        let ghost = NodeId::new(42);
        assert_eq!(g.add_link(a, ghost, 1.0), Err(NetError::UnknownNode(ghost)));
    }

    #[test]
    fn opposite_endpoint() {
        let (g, [a, b, _], [ab, ..]) = triangle();
        assert_eq!(g.link(ab).opposite(a), b);
        assert_eq!(g.link(ab).opposite(b), a);
        assert!(g.link(ab).touches(a));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn opposite_of_non_endpoint_panics() {
        let (g, [_, _, c], [ab, ..]) = triangle();
        let _ = g.link(ab).opposite(c);
    }

    #[test]
    fn endpoints_are_ordered() {
        let mut g = Graph::with_nodes(2);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let l = g.add_link(b, a, 1.0).unwrap();
        assert_eq!(g.link(l).endpoints(), (a, b));
    }

    #[test]
    fn average_degree_of_triangle_is_two() {
        let (g, _, _) = triangle();
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
        assert_eq!(Graph::new().average_degree(), 0.0);
    }

    #[test]
    fn asymmetric_weights_are_kept() {
        let mut g = Graph::with_nodes(2);
        let l = g
            .add_link_weighted(
                NodeId::new(0),
                NodeId::new(1),
                LinkWeights {
                    delay: 1.0,
                    cost: 7.0,
                },
            )
            .unwrap();
        assert_eq!(g.link(l).delay(), 1.0);
        assert_eq!(g.link(l).cost(), 7.0);
    }

    #[test]
    fn positions_round_trip() {
        let mut g = Graph::new();
        let p = Point::new(0.25, 0.75);
        let n = g.add_node_at(p);
        assert_eq!(g.position(n), Some(p));
        let m = g.add_node();
        assert_eq!(g.position(m), None);
    }

    #[test]
    fn induced_subgraph_keeps_internal_links() {
        let (g, [a, b, c], _) = triangle();
        let (sub, mapping) = g.induced_subgraph(&[a, c]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.link_count(), 1); // only the C-A link survives.
        assert_eq!(mapping, vec![a, c]);
        let l = sub.link(sub.link_ids().next().unwrap());
        assert_eq!(l.delay(), 3.0);
        let _ = b;
    }

    #[test]
    fn induced_subgraph_ignores_duplicates() {
        let (g, [a, b, _], _) = triangle();
        let (sub, mapping) = g.induced_subgraph(&[a, b, a]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(mapping, vec![a, b]);
    }

    #[test]
    fn delay_between_connected_and_missing() {
        let (g, [a, b, c], _) = triangle();
        assert_eq!(g.delay_between(a, b).unwrap(), 1.0);
        assert_eq!(g.delay_between(b, c).unwrap(), 2.0);
        let mut g2 = Graph::with_nodes(2);
        g2.add_link(NodeId::new(0), NodeId::new(1), 5.0).unwrap();
        assert!(g2.delay_between(NodeId::new(0), NodeId::new(1)).is_ok());
        let (g3, _, _) = triangle();
        let mut g4 = g3.clone();
        let d = g4.add_node();
        assert!(g4.delay_between(a, d).is_err());
    }
}
