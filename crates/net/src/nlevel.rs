//! N-level hierarchical topologies (§3.3.3's generalization).
//!
//! The paper presents a 2-level transit-stub instantiation of its recovery
//! architecture and notes that it "can be easily generalized into an
//! N-level architecture". This module generates the topologies for that
//! generalization: a root domain at level 0, and at each deeper level a
//! configurable number of child domains hanging off every node of the
//! level above, each attached through a single border (gateway) link.
//! Intra-domain link delays shrink with depth, mirroring how regional and
//! campus networks sit under wide-area backbones.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::NetError;
use crate::graph::Graph;
use crate::ids::{LinkId, NodeId};
use crate::transit_stub::DomainId;
use crate::transit_stub::{DomainKind, TransitStubTopology};

/// An aggregated member population: thousands of receivers served through
/// one attachment node of a leaf domain. Campaigns weight this node's
/// membership by `receivers` in the Eq. 2 `SHR`/`N` maintenance instead of
/// instantiating one event-queue actor per user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggregatedPopulation {
    /// The leaf domain serving this population.
    pub domain: DomainId,
    /// The attachment node the receivers sit behind.
    pub node: NodeId,
    /// Number of receivers aggregated behind `node`.
    pub receivers: u32,
}

/// One recovery domain in an N-level hierarchy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LevelDomain {
    id: DomainId,
    level: u32,
    parent: Option<DomainId>,
    nodes: Vec<NodeId>,
    /// `(border_in_this_domain, node_in_parent_domain)`; `None` for the
    /// root.
    attachment: Option<(NodeId, NodeId)>,
    /// Redundant `(backup_border, node_in_parent_domain)` attachments the
    /// domain can elect a new agent through when the primary border
    /// attachment dies. Empty unless the generator was configured with
    /// [`NLevelConfig::redundant_gateway_prob`].
    backups: Vec<(NodeId, NodeId)>,
}

impl LevelDomain {
    /// Domain id.
    pub fn id(&self) -> DomainId {
        self.id
    }

    /// Depth in the hierarchy (0 = root).
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Parent domain, if any.
    pub fn parent(&self) -> Option<DomainId> {
        self.parent
    }

    /// Nodes belonging to this domain.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// `(border, parent_attachment)` for non-root domains.
    pub fn attachment(&self) -> Option<(NodeId, NodeId)> {
        self.attachment
    }

    /// Redundant `(backup_border, parent_node)` attachments for agent
    /// election when the primary attachment dies.
    pub fn backup_attachments(&self) -> &[(NodeId, NodeId)] {
        &self.backups
    }

    /// Whether `node` belongs to this domain.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }
}

/// Configuration for N-level hierarchy generation.
///
/// # Example
///
/// ```
/// use smrp_net::nlevel::NLevelConfig;
///
/// # fn main() -> Result<(), smrp_net::NetError> {
/// // 3 levels: a 4-node core, 2 regional domains of 5 nodes per core
/// // node, 2 campus domains of 4 nodes per regional node.
/// let topo = NLevelConfig::new(4)
///     .level(2, 5)
///     .level(2, 4)
///     .seed(1)
///     .generate()?;
/// assert_eq!(topo.depth(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NLevelConfig {
    root_nodes: usize,
    fanout: Vec<(usize, usize)>,
    extra_edge_prob: f64,
    base_delay: (f64, f64),
    seed: u64,
    population: u64,
    redundant_gateway_prob: f64,
}

impl NLevelConfig {
    /// Starts a configuration with a `root_nodes`-node root domain and no
    /// deeper levels yet.
    pub fn new(root_nodes: usize) -> Self {
        NLevelConfig {
            root_nodes,
            fanout: Vec::new(),
            extra_edge_prob: 0.4,
            base_delay: (20.0, 50.0),
            seed: 0,
            population: 0,
            redundant_gateway_prob: 0.0,
        }
    }

    /// Appends one level: `domains_per_node` child domains under every node
    /// of the previous level, each with `nodes_per_domain` nodes.
    pub fn level(mut self, domains_per_node: usize, nodes_per_domain: usize) -> Self {
        self.fanout.push((domains_per_node, nodes_per_domain));
        self
    }

    /// Probability of each extra intra-domain chord beyond the spanning
    /// tree.
    pub fn extra_edge_prob(mut self, p: f64) -> Self {
        self.extra_edge_prob = p;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total aggregated receiver population, spread evenly over the leaf
    /// domains as [`AggregatedPopulation`] attachment points (remainder
    /// receivers land on the earliest leaves). `0` (the default) generates
    /// no populations.
    pub fn population(mut self, receivers: u64) -> Self {
        self.population = receivers;
        self
    }

    /// Probability that a non-root domain (with at least two nodes) grows
    /// one redundant backup gateway into its parent domain, enabling agent
    /// election when the primary border attachment dies. `0.0` (the
    /// default) draws nothing and leaves existing seeds byte-identical.
    pub fn redundant_gateway_prob(mut self, p: f64) -> Self {
        self.redundant_gateway_prob = p;
        self
    }

    fn validate(&self) -> Result<(), NetError> {
        if self.root_nodes < 2 {
            return Err(NetError::InvalidParameter {
                name: "root_nodes",
                reason: "the root domain needs at least two nodes",
            });
        }
        for &(d, n) in &self.fanout {
            if d == 0 || n == 0 {
                return Err(NetError::InvalidParameter {
                    name: "fanout",
                    reason: "levels need at least one domain and one node per domain",
                });
            }
        }
        if !(0.0..=1.0).contains(&self.extra_edge_prob) {
            return Err(NetError::InvalidParameter {
                name: "extra_edge_prob",
                reason: "must lie in [0, 1]",
            });
        }
        if !(0.0..=1.0).contains(&self.redundant_gateway_prob) {
            return Err(NetError::InvalidParameter {
                name: "redundant_gateway_prob",
                reason: "must lie in [0, 1]",
            });
        }
        Ok(())
    }

    /// Generates the hierarchy.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidParameter`] for out-of-range settings.
    pub fn generate(&self) -> Result<NLevelTopology, NetError> {
        self.validate()?;
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut graph = Graph::new();
        let mut domains: Vec<LevelDomain> = Vec::new();

        let root_nodes: Vec<NodeId> = (0..self.root_nodes).map(|_| graph.add_node()).collect();
        connect_domain(
            &mut graph,
            &root_nodes,
            self.base_delay,
            self.extra_edge_prob,
            &mut rng,
        );
        domains.push(LevelDomain {
            id: DomainId::new(0),
            level: 0,
            parent: None,
            nodes: root_nodes,
            attachment: None,
            backups: Vec::new(),
        });

        // Frontier of (domain index, level) whose nodes receive children.
        let mut frontier: Vec<usize> = vec![0];
        for (depth, &(per_node, size)) in self.fanout.iter().enumerate() {
            let level = depth as u32 + 1;
            // Delays shrink with depth; gateways sit between the scales.
            let scale = 0.5f64.powi(level as i32);
            let delay = (self.base_delay.0 * scale, self.base_delay.1 * scale);
            let gateway = (delay.1, self.base_delay.0 * 0.5f64.powi(level as i32 - 1));
            let mut next_frontier = Vec::new();
            for &di in &frontier {
                let parent_id = domains[di].id;
                let parent_nodes = domains[di].nodes.clone();
                for &up in &parent_nodes {
                    for _ in 0..per_node {
                        let nodes: Vec<NodeId> = (0..size).map(|_| graph.add_node()).collect();
                        connect_domain(&mut graph, &nodes, delay, self.extra_edge_prob, &mut rng);
                        let border = nodes[rng.gen_range(0..nodes.len())];
                        let gw = if gateway.0 < gateway.1 {
                            rng.gen_range(gateway.0..gateway.1)
                        } else {
                            gateway.0
                        };
                        graph
                            .add_link(border, up, gw)
                            .expect("gateway endpoints are distinct and fresh");
                        let id = DomainId::new(domains.len());
                        domains.push(LevelDomain {
                            id,
                            level,
                            parent: Some(parent_id),
                            nodes,
                            attachment: Some((border, up)),
                            backups: Vec::new(),
                        });
                        next_frontier.push(domains.len() - 1);
                    }
                }
            }
            frontier = next_frontier;
        }

        // Optional redundant backup gateways: the RNG is only consulted
        // when the knob is set, so existing seeds stay byte-identical.
        if self.redundant_gateway_prob > 0.0 {
            for di in 1..domains.len() {
                if domains[di].nodes.len() < 2 {
                    continue;
                }
                if rng.gen::<f64>() >= self.redundant_gateway_prob {
                    continue;
                }
                let (border, _) = domains[di].attachment.expect("non-root has attachment");
                let level = domains[di].level;
                let parent = domains[di].parent.expect("non-root has a parent");
                let candidates: Vec<NodeId> = domains[di]
                    .nodes
                    .iter()
                    .copied()
                    .filter(|&n| n != border)
                    .collect();
                let b2 = candidates[rng.gen_range(0..candidates.len())];
                let parent_nodes = &domains[parent.index()].nodes;
                let up2 = parent_nodes[rng.gen_range(0..parent_nodes.len())];
                let lo = self.base_delay.1 * 0.5f64.powi(level as i32);
                let hi = self.base_delay.0 * 0.5f64.powi(level as i32 - 1);
                let gw = if lo < hi { rng.gen_range(lo..hi) } else { lo };
                if graph.link_between(b2, up2).is_none() {
                    graph.add_link(b2, up2, gw).expect("fresh backup gateway");
                }
                domains[di].backups.push((b2, up2));
            }
        }

        let depth = self.fanout.len() as u32 + 1;

        // Spread the aggregated receiver population evenly over the leaf
        // domains; remainder receivers land on the earliest leaves. The
        // attachment point is the first non-border node so intra-domain
        // repairs exercise real subtree structure.
        let mut populations = Vec::new();
        if self.population > 0 {
            let leaves: Vec<usize> = domains
                .iter()
                .enumerate()
                .filter(|(_, d)| d.level == depth - 1)
                .map(|(i, _)| i)
                .collect();
            let per = self.population / leaves.len() as u64;
            let rem = (self.population % leaves.len() as u64) as usize;
            for (i, &di) in leaves.iter().enumerate() {
                let receivers = per + u64::from(i < rem);
                if receivers == 0 {
                    continue;
                }
                let receivers = u32::try_from(receivers).unwrap_or(u32::MAX);
                let d = &domains[di];
                let border = d.attachment.map(|(b, _)| b);
                let node = d
                    .nodes
                    .iter()
                    .copied()
                    .find(|&n| Some(n) != border)
                    .unwrap_or(d.nodes[0]);
                populations.push(AggregatedPopulation {
                    domain: d.id,
                    node,
                    receivers,
                });
            }
        }

        let mut node_domain = vec![DomainId::new(0); graph.node_count()];
        for d in &domains {
            for &n in &d.nodes {
                node_domain[n.index()] = d.id;
            }
        }
        Ok(NLevelTopology {
            graph,
            domains,
            node_domain,
            depth,
            populations,
        })
    }
}

/// Random connected subgraph: spanning tree plus chords.
fn connect_domain(
    graph: &mut Graph,
    nodes: &[NodeId],
    delay: (f64, f64),
    extra_edge_prob: f64,
    rng: &mut SmallRng,
) {
    let sample = |rng: &mut SmallRng| {
        if delay.0 < delay.1 {
            rng.gen_range(delay.0..delay.1)
        } else {
            delay.0
        }
    };
    for (i, &n) in nodes.iter().enumerate().skip(1) {
        let parent = nodes[rng.gen_range(0..i)];
        let d = sample(rng);
        graph.add_link(n, parent, d).expect("fresh spanning edge");
    }
    for i in 0..nodes.len() {
        for j in (i + 1)..nodes.len() {
            if graph.link_between(nodes[i], nodes[j]).is_some() {
                continue;
            }
            if rng.gen::<f64>() < extra_edge_prob {
                let d = sample(rng);
                graph.add_link(nodes[i], nodes[j], d).expect("fresh chord");
            }
        }
    }
}

/// A generated N-level hierarchy.
#[derive(Debug, Clone)]
pub struct NLevelTopology {
    graph: Graph,
    domains: Vec<LevelDomain>,
    node_domain: Vec<DomainId>,
    depth: u32,
    populations: Vec<AggregatedPopulation>,
}

impl NLevelTopology {
    /// The underlying flat graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// All domains; index 0 is the root.
    pub fn domains(&self) -> &[LevelDomain] {
        &self.domains
    }

    /// The root (level-0) domain.
    pub fn root(&self) -> &LevelDomain {
        &self.domains[0]
    }

    /// Number of levels.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The domain a node belongs to.
    pub fn domain_of(&self, node: NodeId) -> DomainId {
        self.node_domain[node.index()]
    }

    /// Domains at the deepest level.
    pub fn leaf_domains(&self) -> impl Iterator<Item = &LevelDomain> {
        let max = self.depth - 1;
        self.domains.iter().filter(move |d| d.level == max)
    }

    /// Child domains of `parent`.
    pub fn children_of(&self, parent: DomainId) -> impl Iterator<Item = &LevelDomain> {
        self.domains
            .iter()
            .filter(move |d| d.parent == Some(parent))
    }

    /// Chain of domains from `domain` up to the root (inclusive).
    pub fn ancestry(&self, domain: DomainId) -> Vec<DomainId> {
        let mut out = vec![domain];
        let mut cur = domain;
        while let Some(p) = self.domains[cur.index()].parent {
            out.push(p);
            cur = p;
        }
        out
    }

    /// Aggregated receiver populations attached to leaf domains.
    pub fn populations(&self) -> &[AggregatedPopulation] {
        &self.populations
    }

    /// Total aggregated receivers across all attachment points.
    pub fn total_population(&self) -> u64 {
        self.populations
            .iter()
            .map(|p| u64::from(p.receivers))
            .sum()
    }

    /// The domain responsible for repairing a failure of `link`.
    ///
    /// An intra-domain link is owned by the domain both endpoints belong
    /// to. A gateway link (child border ↔ parent node) is owned by the
    /// **parent** side: the child cannot repair the loss of its own
    /// attachment, so the failure escalates one level up.
    pub fn owning_domain_of_link(&self, link: LinkId) -> DomainId {
        let (a, b) = self.graph.link(link).endpoints();
        let da = self.domain_of(a);
        let db = self.domain_of(b);
        if da == db {
            return da;
        }
        if self.domains[da.index()].parent == Some(db) {
            return db;
        }
        if self.domains[db.index()].parent == Some(da) {
            return da;
        }
        // Cross-branch link (not produced by the generator, but tolerated
        // in hand-built topologies): the shallower domain owns it.
        if self.domains[da.index()].level <= self.domains[db.index()].level {
            da
        } else {
            db
        }
    }

    /// Reinterprets a 2-level transit-stub topology as a depth-2 N-level
    /// hierarchy with an identity [`DomainId`] mapping: the transit domain
    /// becomes the level-0 root (id 0) and the stub domains become its
    /// level-1 children in their original order. The flat graph is shared
    /// byte-for-byte (same node and link ids), which is what makes the
    /// differential levels=2 comparison against the legacy 2-level
    /// recovery engine exact.
    pub fn from_transit_stub(ts: &TransitStubTopology) -> NLevelTopology {
        let graph = ts.graph().clone();
        let root_id = ts.transit_domain().id();
        let mut domains = Vec::with_capacity(ts.domains().len());
        for d in ts.domains() {
            let (level, parent) = match d.kind() {
                DomainKind::Transit => (0, None),
                DomainKind::Stub => (1, Some(root_id)),
            };
            domains.push(LevelDomain {
                id: d.id(),
                level,
                parent,
                nodes: d.nodes().to_vec(),
                attachment: d.attachment(),
                backups: Vec::new(),
            });
        }
        let mut node_domain = vec![DomainId::new(0); graph.node_count()];
        for d in &domains {
            for &n in &d.nodes {
                node_domain[n.index()] = d.id;
            }
        }
        NLevelTopology {
            graph,
            domains,
            node_domain,
            depth: 2,
            populations: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;

    fn three_level() -> NLevelTopology {
        NLevelConfig::new(3)
            .level(1, 4)
            .level(2, 3)
            .seed(5)
            .generate()
            .unwrap()
    }

    #[test]
    fn shape_and_connectivity() {
        let t = three_level();
        assert!(is_connected(t.graph()));
        assert_eq!(t.depth(), 3);
        // 1 root + 3 level-1 domains + (3*4 nodes)*2 level-2 domains.
        assert_eq!(t.domains().len(), 1 + 3 + 24);
        assert_eq!(t.graph().node_count(), 3 + 3 * 4 + 24 * 3);
    }

    #[test]
    fn domains_partition_nodes() {
        let t = three_level();
        for n in t.graph().node_ids() {
            let d = t.domain_of(n);
            assert!(t.domains()[d.index()].contains(n));
        }
        let total: usize = t.domains().iter().map(|d| d.nodes().len()).sum();
        assert_eq!(total, t.graph().node_count());
    }

    #[test]
    fn attachments_link_child_to_parent() {
        let t = three_level();
        for d in t.domains().iter().skip(1) {
            let (border, up) = d.attachment().unwrap();
            assert!(d.contains(border));
            let parent = d.parent().unwrap();
            assert!(t.domains()[parent.index()].contains(up));
            assert!(t.graph().link_between(border, up).is_some());
        }
    }

    #[test]
    fn ancestry_walks_to_root() {
        let t = three_level();
        let leaf = t.leaf_domains().next().unwrap();
        let chain = t.ancestry(leaf.id());
        assert_eq!(chain.len(), 3);
        assert_eq!(*chain.last().unwrap(), t.root().id());
        assert_eq!(t.ancestry(t.root().id()), vec![t.root().id()]);
    }

    #[test]
    fn delays_shrink_with_depth() {
        let t = three_level();
        let g = t.graph();
        let mut max_by_level = [0.0f64; 3];
        for d in t.domains() {
            for &a in d.nodes() {
                for &b in d.nodes() {
                    if a < b {
                        if let Some(l) = g.link_between(a, b) {
                            let lvl = d.level() as usize;
                            max_by_level[lvl] = max_by_level[lvl].max(g.link(l).delay());
                        }
                    }
                }
            }
        }
        assert!(max_by_level[0] > max_by_level[1]);
        assert!(max_by_level[1] > max_by_level[2]);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(NLevelConfig::new(1).generate().is_err());
        assert!(NLevelConfig::new(3).level(0, 4).generate().is_err());
        assert!(NLevelConfig::new(3).level(1, 0).generate().is_err());
        assert!(NLevelConfig::new(3)
            .extra_edge_prob(2.0)
            .generate()
            .is_err());
    }

    #[test]
    fn two_level_config_matches_transit_stub_shape() {
        let t = NLevelConfig::new(4).level(2, 6).seed(9).generate().unwrap();
        assert_eq!(t.depth(), 2);
        assert_eq!(t.leaf_domains().count(), 8);
        assert!(is_connected(t.graph()));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = three_level();
        let b = three_level();
        assert_eq!(a.graph().link_count(), b.graph().link_count());
    }

    /// Byte-level determinism: the same seed reproduces the identical
    /// topology — every link tuple, domain roster, backup, and population.
    #[test]
    fn same_seed_reproduces_identical_topology_bytes() {
        let build = || {
            NLevelConfig::new(4)
                .level(2, 3)
                .level(2, 2)
                .seed(42)
                .redundant_gateway_prob(0.5)
                .population(123_457)
                .generate()
                .unwrap()
        };
        let a = build();
        let b = build();
        let links = |t: &NLevelTopology| -> Vec<(NodeId, NodeId, u64, u64)> {
            t.graph()
                .link_ids()
                .map(|l| {
                    let link = t.graph().link(l);
                    (
                        link.a(),
                        link.b(),
                        link.delay().to_bits(),
                        link.cost().to_bits(),
                    )
                })
                .collect()
        };
        assert_eq!(links(&a), links(&b));
        for (da, db) in a.domains().iter().zip(b.domains()) {
            assert_eq!(da.nodes(), db.nodes());
            assert_eq!(da.attachment(), db.attachment());
            assert_eq!(da.backup_attachments(), db.backup_attachments());
        }
        assert_eq!(a.populations(), b.populations());
        // And a different seed actually changes something.
        let c = NLevelConfig::new(4)
            .level(2, 3)
            .level(2, 2)
            .seed(43)
            .redundant_gateway_prob(0.5)
            .population(123_457)
            .generate()
            .unwrap();
        assert_ne!(links(&a), links(&c));
    }

    /// Single-node child domains are legal: the lone node doubles as the
    /// border, the domain has no chords, and no backup gateway can be
    /// drawn for it (a backup border must differ from the primary).
    #[test]
    fn single_node_domains_are_borders_without_backups() {
        let t = NLevelConfig::new(3)
            .level(2, 1)
            .seed(11)
            .redundant_gateway_prob(1.0)
            .generate()
            .unwrap();
        assert!(is_connected(t.graph()));
        for d in t.leaf_domains() {
            assert_eq!(d.nodes().len(), 1);
            let (border, up) = d.attachment().unwrap();
            assert_eq!(border, d.nodes()[0]);
            assert!(t.root().contains(up));
            assert!(d.backup_attachments().is_empty());
        }
    }

    /// A depth-1 configuration degenerates to a flat single-domain graph.
    #[test]
    fn depth_one_tree_is_flat() {
        let t = NLevelConfig::new(6).seed(3).generate().unwrap();
        assert_eq!(t.depth(), 1);
        assert_eq!(t.domains().len(), 1);
        assert!(t.root().attachment().is_none());
        assert_eq!(t.leaf_domains().count(), 1);
        assert_eq!(t.root().nodes().len(), t.graph().node_count());
        assert!(is_connected(t.graph()));
        for n in t.graph().node_ids() {
            assert_eq!(t.domain_of(n), t.root().id());
        }
        // Every link is intra-root.
        for l in t.graph().link_ids() {
            assert_eq!(t.owning_domain_of_link(l), t.root().id());
        }
    }

    #[test]
    fn error_paths_return_invalid_parameter() {
        for bad in [
            NLevelConfig::new(1),
            NLevelConfig::new(3).level(0, 4),
            NLevelConfig::new(3).level(1, 0),
            NLevelConfig::new(3).extra_edge_prob(-0.1),
            NLevelConfig::new(3).redundant_gateway_prob(1.5),
            NLevelConfig::new(3).redundant_gateway_prob(-0.5),
        ] {
            match bad.generate() {
                Err(NetError::InvalidParameter { .. }) => {}
                other => panic!("expected InvalidParameter, got {other:?}"),
            }
        }
    }

    #[test]
    fn backup_gateways_land_in_parent_and_avoid_primary_border() {
        let t = NLevelConfig::new(3)
            .level(2, 4)
            .level(2, 3)
            .seed(17)
            .redundant_gateway_prob(1.0)
            .generate()
            .unwrap();
        let mut seen = 0;
        for d in t.domains().iter().skip(1) {
            assert_eq!(d.backup_attachments().len(), 1);
            let (border, _) = d.attachment().unwrap();
            for &(b2, up2) in d.backup_attachments() {
                seen += 1;
                assert!(d.contains(b2));
                assert_ne!(b2, border);
                let parent = d.parent().unwrap();
                assert!(t.domains()[parent.index()].contains(up2));
                assert!(t.graph().link_between(b2, up2).is_some());
            }
        }
        assert!(seen > 0);
    }

    #[test]
    fn zero_gateway_prob_leaves_seed_output_unchanged() {
        let plain = three_level();
        let knob = NLevelConfig::new(3)
            .level(1, 4)
            .level(2, 3)
            .seed(5)
            .redundant_gateway_prob(0.0)
            .generate()
            .unwrap();
        assert_eq!(plain.graph().link_count(), knob.graph().link_count());
        assert!(knob
            .domains()
            .iter()
            .all(|d| d.backup_attachments().is_empty()));
        assert!(knob.populations().is_empty());
    }

    #[test]
    fn population_spreads_evenly_with_remainder_on_earliest_leaves() {
        let t = NLevelConfig::new(3)
            .level(1, 4)
            .level(2, 3)
            .seed(5)
            .population(1_000_003)
            .generate()
            .unwrap();
        let leaves: Vec<_> = t.leaf_domains().collect();
        assert_eq!(t.populations().len(), leaves.len());
        assert_eq!(t.total_population(), 1_000_003);
        let per = 1_000_003u64 / leaves.len() as u64;
        for (i, p) in t.populations().iter().enumerate() {
            let expect = per + u64::from(i < (1_000_003 % leaves.len() as u64) as usize);
            assert_eq!(u64::from(p.receivers), expect);
            let d = &t.domains()[p.domain.index()];
            assert_eq!(d.id(), leaves[i].id());
            assert!(d.contains(p.node));
            // Multi-node leaves attach the population off the border.
            if d.nodes().len() > 1 {
                assert_ne!(Some(p.node), d.attachment().map(|(b, _)| b));
            }
        }
    }

    #[test]
    fn tiny_population_lands_on_earliest_leaves_only() {
        let t = NLevelConfig::new(3)
            .level(2, 2)
            .seed(8)
            .population(2)
            .generate()
            .unwrap();
        assert!(t.leaf_domains().count() > 2);
        assert_eq!(t.populations().len(), 2);
        assert_eq!(t.total_population(), 2);
        assert!(t.populations().iter().all(|p| p.receivers == 1));
    }

    #[test]
    fn link_ownership_is_intra_domain_or_parent_side() {
        let t = three_level();
        for l in t.graph().link_ids() {
            let (a, b) = t.graph().link(l).endpoints();
            let owner = t.owning_domain_of_link(l);
            let (da, db) = (t.domain_of(a), t.domain_of(b));
            if da == db {
                assert_eq!(owner, da);
            } else {
                // Gateway: owner is the shallower (parent) side.
                let (od, other) = if owner == da { (da, db) } else { (db, da) };
                assert_eq!(owner, od);
                assert_eq!(t.domains()[other.index()].parent(), Some(owner));
            }
        }
    }

    #[test]
    fn transit_stub_converts_with_identity_domain_ids() {
        let ts = crate::transit_stub::TransitStubConfig::new()
            .transit_nodes(4)
            .stubs_per_transit_node(2)
            .stub_nodes(5)
            .seed(21)
            .generate()
            .unwrap();
        let t = NLevelTopology::from_transit_stub(&ts);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.domains().len(), ts.domains().len());
        assert_eq!(t.graph().node_count(), ts.graph().node_count());
        assert_eq!(t.graph().link_count(), ts.graph().link_count());
        assert_eq!(t.root().id(), ts.transit_domain().id());
        assert_eq!(t.root().level(), 0);
        for (nd, od) in t.domains().iter().zip(ts.domains()) {
            assert_eq!(nd.id(), od.id());
            assert_eq!(nd.nodes(), od.nodes());
            assert_eq!(nd.attachment(), od.attachment());
        }
        for n in t.graph().node_ids() {
            assert_eq!(t.domain_of(n), ts.domain_of(n));
        }
        // Gateway links are owned by the transit (root) side.
        for stub in ts.stub_domains() {
            let (border, up) = stub.attachment().unwrap();
            let l = t.graph().link_between(border, up).unwrap();
            assert_eq!(t.owning_domain_of_link(l), t.root().id());
        }
    }
}
