//! N-level hierarchical topologies (§3.3.3's generalization).
//!
//! The paper presents a 2-level transit-stub instantiation of its recovery
//! architecture and notes that it "can be easily generalized into an
//! N-level architecture". This module generates the topologies for that
//! generalization: a root domain at level 0, and at each deeper level a
//! configurable number of child domains hanging off every node of the
//! level above, each attached through a single border (gateway) link.
//! Intra-domain link delays shrink with depth, mirroring how regional and
//! campus networks sit under wide-area backbones.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::NetError;
use crate::graph::Graph;
use crate::ids::NodeId;
use crate::transit_stub::DomainId;

/// One recovery domain in an N-level hierarchy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LevelDomain {
    id: DomainId,
    level: u32,
    parent: Option<DomainId>,
    nodes: Vec<NodeId>,
    /// `(border_in_this_domain, node_in_parent_domain)`; `None` for the
    /// root.
    attachment: Option<(NodeId, NodeId)>,
}

impl LevelDomain {
    /// Domain id.
    pub fn id(&self) -> DomainId {
        self.id
    }

    /// Depth in the hierarchy (0 = root).
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Parent domain, if any.
    pub fn parent(&self) -> Option<DomainId> {
        self.parent
    }

    /// Nodes belonging to this domain.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// `(border, parent_attachment)` for non-root domains.
    pub fn attachment(&self) -> Option<(NodeId, NodeId)> {
        self.attachment
    }

    /// Whether `node` belongs to this domain.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }
}

/// Configuration for N-level hierarchy generation.
///
/// # Example
///
/// ```
/// use smrp_net::nlevel::NLevelConfig;
///
/// # fn main() -> Result<(), smrp_net::NetError> {
/// // 3 levels: a 4-node core, 2 regional domains of 5 nodes per core
/// // node, 2 campus domains of 4 nodes per regional node.
/// let topo = NLevelConfig::new(4)
///     .level(2, 5)
///     .level(2, 4)
///     .seed(1)
///     .generate()?;
/// assert_eq!(topo.depth(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NLevelConfig {
    root_nodes: usize,
    fanout: Vec<(usize, usize)>,
    extra_edge_prob: f64,
    base_delay: (f64, f64),
    seed: u64,
}

impl NLevelConfig {
    /// Starts a configuration with a `root_nodes`-node root domain and no
    /// deeper levels yet.
    pub fn new(root_nodes: usize) -> Self {
        NLevelConfig {
            root_nodes,
            fanout: Vec::new(),
            extra_edge_prob: 0.4,
            base_delay: (20.0, 50.0),
            seed: 0,
        }
    }

    /// Appends one level: `domains_per_node` child domains under every node
    /// of the previous level, each with `nodes_per_domain` nodes.
    pub fn level(mut self, domains_per_node: usize, nodes_per_domain: usize) -> Self {
        self.fanout.push((domains_per_node, nodes_per_domain));
        self
    }

    /// Probability of each extra intra-domain chord beyond the spanning
    /// tree.
    pub fn extra_edge_prob(mut self, p: f64) -> Self {
        self.extra_edge_prob = p;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn validate(&self) -> Result<(), NetError> {
        if self.root_nodes < 2 {
            return Err(NetError::InvalidParameter {
                name: "root_nodes",
                reason: "the root domain needs at least two nodes",
            });
        }
        for &(d, n) in &self.fanout {
            if d == 0 || n == 0 {
                return Err(NetError::InvalidParameter {
                    name: "fanout",
                    reason: "levels need at least one domain and one node per domain",
                });
            }
        }
        if !(0.0..=1.0).contains(&self.extra_edge_prob) {
            return Err(NetError::InvalidParameter {
                name: "extra_edge_prob",
                reason: "must lie in [0, 1]",
            });
        }
        Ok(())
    }

    /// Generates the hierarchy.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidParameter`] for out-of-range settings.
    pub fn generate(&self) -> Result<NLevelTopology, NetError> {
        self.validate()?;
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut graph = Graph::new();
        let mut domains: Vec<LevelDomain> = Vec::new();

        let root_nodes: Vec<NodeId> = (0..self.root_nodes).map(|_| graph.add_node()).collect();
        connect_domain(
            &mut graph,
            &root_nodes,
            self.base_delay,
            self.extra_edge_prob,
            &mut rng,
        );
        domains.push(LevelDomain {
            id: DomainId::new(0),
            level: 0,
            parent: None,
            nodes: root_nodes,
            attachment: None,
        });

        // Frontier of (domain index, level) whose nodes receive children.
        let mut frontier: Vec<usize> = vec![0];
        for (depth, &(per_node, size)) in self.fanout.iter().enumerate() {
            let level = depth as u32 + 1;
            // Delays shrink with depth; gateways sit between the scales.
            let scale = 0.5f64.powi(level as i32);
            let delay = (self.base_delay.0 * scale, self.base_delay.1 * scale);
            let gateway = (delay.1, self.base_delay.0 * 0.5f64.powi(level as i32 - 1));
            let mut next_frontier = Vec::new();
            for &di in &frontier {
                let parent_id = domains[di].id;
                let parent_nodes = domains[di].nodes.clone();
                for &up in &parent_nodes {
                    for _ in 0..per_node {
                        let nodes: Vec<NodeId> = (0..size).map(|_| graph.add_node()).collect();
                        connect_domain(&mut graph, &nodes, delay, self.extra_edge_prob, &mut rng);
                        let border = nodes[rng.gen_range(0..nodes.len())];
                        let gw = if gateway.0 < gateway.1 {
                            rng.gen_range(gateway.0..gateway.1)
                        } else {
                            gateway.0
                        };
                        graph
                            .add_link(border, up, gw)
                            .expect("gateway endpoints are distinct and fresh");
                        let id = DomainId::new(domains.len());
                        domains.push(LevelDomain {
                            id,
                            level,
                            parent: Some(parent_id),
                            nodes,
                            attachment: Some((border, up)),
                        });
                        next_frontier.push(domains.len() - 1);
                    }
                }
            }
            frontier = next_frontier;
        }

        let mut node_domain = vec![DomainId::new(0); graph.node_count()];
        for d in &domains {
            for &n in &d.nodes {
                node_domain[n.index()] = d.id;
            }
        }
        Ok(NLevelTopology {
            graph,
            domains,
            node_domain,
            depth: self.fanout.len() as u32 + 1,
        })
    }
}

/// Random connected subgraph: spanning tree plus chords.
fn connect_domain(
    graph: &mut Graph,
    nodes: &[NodeId],
    delay: (f64, f64),
    extra_edge_prob: f64,
    rng: &mut SmallRng,
) {
    let sample = |rng: &mut SmallRng| {
        if delay.0 < delay.1 {
            rng.gen_range(delay.0..delay.1)
        } else {
            delay.0
        }
    };
    for (i, &n) in nodes.iter().enumerate().skip(1) {
        let parent = nodes[rng.gen_range(0..i)];
        let d = sample(rng);
        graph.add_link(n, parent, d).expect("fresh spanning edge");
    }
    for i in 0..nodes.len() {
        for j in (i + 1)..nodes.len() {
            if graph.link_between(nodes[i], nodes[j]).is_some() {
                continue;
            }
            if rng.gen::<f64>() < extra_edge_prob {
                let d = sample(rng);
                graph.add_link(nodes[i], nodes[j], d).expect("fresh chord");
            }
        }
    }
}

/// A generated N-level hierarchy.
#[derive(Debug, Clone)]
pub struct NLevelTopology {
    graph: Graph,
    domains: Vec<LevelDomain>,
    node_domain: Vec<DomainId>,
    depth: u32,
}

impl NLevelTopology {
    /// The underlying flat graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// All domains; index 0 is the root.
    pub fn domains(&self) -> &[LevelDomain] {
        &self.domains
    }

    /// The root (level-0) domain.
    pub fn root(&self) -> &LevelDomain {
        &self.domains[0]
    }

    /// Number of levels.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The domain a node belongs to.
    pub fn domain_of(&self, node: NodeId) -> DomainId {
        self.node_domain[node.index()]
    }

    /// Domains at the deepest level.
    pub fn leaf_domains(&self) -> impl Iterator<Item = &LevelDomain> {
        let max = self.depth - 1;
        self.domains.iter().filter(move |d| d.level == max)
    }

    /// Child domains of `parent`.
    pub fn children_of(&self, parent: DomainId) -> impl Iterator<Item = &LevelDomain> {
        self.domains
            .iter()
            .filter(move |d| d.parent == Some(parent))
    }

    /// Chain of domains from `domain` up to the root (inclusive).
    pub fn ancestry(&self, domain: DomainId) -> Vec<DomainId> {
        let mut out = vec![domain];
        let mut cur = domain;
        while let Some(p) = self.domains[cur.index()].parent {
            out.push(p);
            cur = p;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;

    fn three_level() -> NLevelTopology {
        NLevelConfig::new(3)
            .level(1, 4)
            .level(2, 3)
            .seed(5)
            .generate()
            .unwrap()
    }

    #[test]
    fn shape_and_connectivity() {
        let t = three_level();
        assert!(is_connected(t.graph()));
        assert_eq!(t.depth(), 3);
        // 1 root + 3 level-1 domains + (3*4 nodes)*2 level-2 domains.
        assert_eq!(t.domains().len(), 1 + 3 + 24);
        assert_eq!(t.graph().node_count(), 3 + 3 * 4 + 24 * 3);
    }

    #[test]
    fn domains_partition_nodes() {
        let t = three_level();
        for n in t.graph().node_ids() {
            let d = t.domain_of(n);
            assert!(t.domains()[d.index()].contains(n));
        }
        let total: usize = t.domains().iter().map(|d| d.nodes().len()).sum();
        assert_eq!(total, t.graph().node_count());
    }

    #[test]
    fn attachments_link_child_to_parent() {
        let t = three_level();
        for d in t.domains().iter().skip(1) {
            let (border, up) = d.attachment().unwrap();
            assert!(d.contains(border));
            let parent = d.parent().unwrap();
            assert!(t.domains()[parent.index()].contains(up));
            assert!(t.graph().link_between(border, up).is_some());
        }
    }

    #[test]
    fn ancestry_walks_to_root() {
        let t = three_level();
        let leaf = t.leaf_domains().next().unwrap();
        let chain = t.ancestry(leaf.id());
        assert_eq!(chain.len(), 3);
        assert_eq!(*chain.last().unwrap(), t.root().id());
        assert_eq!(t.ancestry(t.root().id()), vec![t.root().id()]);
    }

    #[test]
    fn delays_shrink_with_depth() {
        let t = three_level();
        let g = t.graph();
        let mut max_by_level = [0.0f64; 3];
        for d in t.domains() {
            for &a in d.nodes() {
                for &b in d.nodes() {
                    if a < b {
                        if let Some(l) = g.link_between(a, b) {
                            let lvl = d.level() as usize;
                            max_by_level[lvl] = max_by_level[lvl].max(g.link(l).delay());
                        }
                    }
                }
            }
        }
        assert!(max_by_level[0] > max_by_level[1]);
        assert!(max_by_level[1] > max_by_level[2]);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(NLevelConfig::new(1).generate().is_err());
        assert!(NLevelConfig::new(3).level(0, 4).generate().is_err());
        assert!(NLevelConfig::new(3).level(1, 0).generate().is_err());
        assert!(NLevelConfig::new(3)
            .extra_edge_prob(2.0)
            .generate()
            .is_err());
    }

    #[test]
    fn two_level_config_matches_transit_stub_shape() {
        let t = NLevelConfig::new(4).level(2, 6).seed(9).generate().unwrap();
        assert_eq!(t.depth(), 2);
        assert_eq!(t.leaf_domains().count(), 8);
        assert!(is_connected(t.graph()));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = three_level();
        let b = three_level();
        assert_eq!(a.graph().link_count(), b.graph().link_count());
    }
}
