//! Typed handles for graph entities.
//!
//! Using newtypes instead of bare `usize` indices prevents accidentally
//! indexing the link table with a node id (and vice versa) anywhere in the
//! workspace.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a node within a [`crate::Graph`].
///
/// Node ids are dense indices assigned in insertion order; they are only
/// meaningful relative to the graph that issued them.
///
/// ```
/// use smrp_net::NodeId;
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(n.to_string(), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// Returns the raw dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId::new(index)
    }
}

/// Identifier of an undirected link within a [`crate::Graph`].
///
/// ```
/// use smrp_net::LinkId;
/// let l = LinkId::new(7);
/// assert_eq!(l.index(), 7);
/// assert_eq!(l.to_string(), "l7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(u32);

impl LinkId {
    /// Creates a link id from a raw index.
    #[inline]
    pub fn new(index: usize) -> Self {
        LinkId(index as u32)
    }

    /// Returns the raw dense index of this link.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl From<usize> for LinkId {
    fn from(index: usize) -> Self {
        LinkId::new(index)
    }
}

/// Identifier of a multicast session (group) sharing one topology.
///
/// Multi-session runs key per-group protocol state — tree, SHR table,
/// soft-state timers, reliable-delivery lanes — by `GroupId`, while the
/// links, failure scenario and degraded channel underneath are shared by
/// every group. Like node and link ids, group ids are dense indices
/// assigned by whoever hosts the sessions.
///
/// ```
/// use smrp_net::GroupId;
/// let g = GroupId::new(2);
/// assert_eq!(g.index(), 2);
/// assert_eq!(g.to_string(), "g2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupId(u32);

impl GroupId {
    /// Creates a group id from a raw index.
    #[inline]
    pub fn new(index: usize) -> Self {
        GroupId(index as u32)
    }

    /// Returns the raw dense index of this group.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl From<usize> for GroupId {
    fn from(index: usize) -> Self {
        GroupId::new(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_index() {
        for i in [0usize, 1, 99, 100_000] {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    fn link_id_round_trips_index() {
        for i in [0usize, 1, 99, 100_000] {
            assert_eq!(LinkId::new(i).index(), i);
        }
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(LinkId::new(0) < LinkId::new(10));
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(NodeId::new(12).to_string(), "n12");
        assert_eq!(LinkId::new(0).to_string(), "l0");
        assert_eq!(GroupId::new(3).to_string(), "g3");
    }

    #[test]
    fn from_usize_matches_new() {
        assert_eq!(NodeId::from(5), NodeId::new(5));
        assert_eq!(LinkId::from(5), LinkId::new(5));
        assert_eq!(GroupId::from(5), GroupId::new(5));
    }

    #[test]
    fn group_id_round_trips_index_and_orders() {
        for i in [0usize, 1, 99, 100_000] {
            assert_eq!(GroupId::new(i).index(), i);
        }
        assert!(GroupId::new(0) < GroupId::new(7));
    }
}
