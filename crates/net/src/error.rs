//! Error type shared by the network substrate.

use std::error::Error;
use std::fmt;

use crate::ids::{LinkId, NodeId};

/// Errors produced by graph construction, topology generation and path
/// queries.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetError {
    /// A node id referred to a node that does not exist in the graph.
    UnknownNode(NodeId),
    /// A link id referred to a link that does not exist in the graph.
    UnknownLink(LinkId),
    /// Attempted to create a self-loop, which the substrate forbids.
    SelfLoop(NodeId),
    /// Attempted to create a parallel link between two nodes.
    DuplicateLink(NodeId, NodeId),
    /// A link weight (delay or cost) was not a finite positive number.
    InvalidWeight(f64),
    /// A topology generator was configured with an invalid parameter.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: &'static str,
    },
    /// A generator failed to produce a connected topology within its retry
    /// budget.
    DisconnectedTopology {
        /// Number of generation attempts made.
        attempts: u32,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NetError::UnknownLink(l) => write!(f, "unknown link {l}"),
            NetError::SelfLoop(n) => write!(f, "self-loop at node {n} is not allowed"),
            NetError::DuplicateLink(a, b) => {
                write!(f, "a link between {a} and {b} already exists")
            }
            NetError::InvalidWeight(w) => {
                write!(f, "link weight {w} is not a finite positive number")
            }
            NetError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            NetError::DisconnectedTopology { attempts } => write!(
                f,
                "failed to generate a connected topology after {attempts} attempts"
            ),
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let msg = NetError::SelfLoop(NodeId::new(4)).to_string();
        assert!(msg.contains("n4"));
        let msg = NetError::DisconnectedTopology { attempts: 3 }.to_string();
        assert!(msg.contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }
}
