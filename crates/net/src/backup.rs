//! Batch precomputation of backup detours (protection planes).
//!
//! Reactive restoration searches for a detour *after* a failure is
//! detected; protection computes the detour *ahead of time* against a
//! hypothetical contingency and keeps it warm, so activation is a local
//! table lookup. This module is the network-layer half of that scheme: a
//! [`BackupPlanner`] holds one [`DetourRequest`] per protected node —
//! "starting at `from`, assuming the components in `avoid` are already
//! gone, reach the nearest acceptable target" — and batch-computes the
//! answers with the same forbidden-set Dijkstra that reactive recovery
//! uses ([`crate::dijkstra::shortest_path_to_any`]).
//!
//! Requests are dirty-tracked: inserting a request marks it dirty, and
//! tree or metric changes mark affected requests dirty again
//! ([`BackupPlanner::mark_dirty`] / [`BackupPlanner::mark_all_dirty`]);
//! [`BackupPlanner::refresh`] then recomputes only the dirty subset, so a
//! soft-state maintenance sweep that touches one branch does not pay for
//! the whole session's plans.

use crate::dijkstra::{self, Constraints};
use crate::failure::FailureScenario;
use crate::graph::Graph;
use crate::ids::NodeId;
use crate::path::Path;

/// One protection request: a detour for `from` computed as if the
/// components in `avoid` had already failed.
///
/// The target set is not part of the request — it depends on tree state
/// the caller owns — so it is supplied per refresh as a predicate (see
/// [`BackupPlanner::refresh`]).
#[derive(Debug, Clone)]
pub struct DetourRequest {
    /// The protected node the detour starts from.
    pub from: NodeId,
    /// The contingency the detour must survive: every component in this
    /// scenario is treated as already failed.
    pub avoid: FailureScenario,
}

/// Batch detour precomputation with incremental refresh.
///
/// # Example
///
/// ```
/// use smrp_net::backup::{BackupPlanner, DetourRequest};
/// use smrp_net::{FailureScenario, Graph};
///
/// # fn main() -> Result<(), smrp_net::NetError> {
/// // Square: a - b - c - d - a. Protect c against the loss of b.
/// let mut g = Graph::with_nodes(4);
/// let ids: Vec<_> = g.node_ids().collect();
/// let (a, b, c, d) = (ids[0], ids[1], ids[2], ids[3]);
/// g.add_link(a, b, 1.0)?;
/// g.add_link(b, c, 1.0)?;
/// g.add_link(c, d, 1.0)?;
/// g.add_link(d, a, 1.0)?;
/// let mut planner = BackupPlanner::new();
/// let id = planner.insert(DetourRequest { from: c, avoid: FailureScenario::node(b) });
/// planner.refresh(&g, |_, n| n == a);
/// assert_eq!(planner.plan(id).unwrap().nodes(), &[c, d, a]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct BackupPlanner {
    requests: Vec<DetourRequest>,
    plans: Vec<Option<Path>>,
    dirty: Vec<bool>,
}

impl BackupPlanner {
    /// An empty planner.
    pub fn new() -> Self {
        BackupPlanner::default()
    }

    /// Number of registered requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether no requests are registered.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Registers a request and returns its id. The request starts dirty:
    /// it has no plan until the next [`refresh`](Self::refresh).
    pub fn insert(&mut self, request: DetourRequest) -> usize {
        self.requests.push(request);
        self.plans.push(None);
        self.dirty.push(true);
        self.requests.len() - 1
    }

    /// The request registered under `id`.
    pub fn request(&self, id: usize) -> &DetourRequest {
        &self.requests[id]
    }

    /// Marks one request dirty — its plan is recomputed on the next
    /// refresh. Used when a tree or metric change invalidates a single
    /// node's detour (e.g. its upstream changed).
    pub fn mark_dirty(&mut self, id: usize) {
        self.dirty[id] = true;
    }

    /// Marks every request dirty — used after a change whose blast radius
    /// is unknown (topology import, bulk metric update).
    pub fn mark_all_dirty(&mut self) {
        self.dirty.iter_mut().for_each(|d| *d = true);
    }

    /// Number of requests currently dirty.
    pub fn dirty_count(&self) -> usize {
        self.dirty.iter().filter(|d| **d).count()
    }

    /// The current plan for `id`: the shortest detour found by the last
    /// refresh, or `None` when the contingency disconnects `from` from
    /// every target (or the request has never been refreshed).
    pub fn plan(&self, id: usize) -> Option<&Path> {
        self.plans[id].as_ref()
    }

    /// Recomputes every dirty request against `graph`, using
    /// `targets(id, node)` as the per-request attach predicate, and
    /// returns how many plans were recomputed. Clean requests are not
    /// touched — this is the incremental-refresh half of the API.
    pub fn refresh<F>(&mut self, graph: &Graph, mut targets: F) -> usize
    where
        F: FnMut(usize, NodeId) -> bool,
    {
        let mut recomputed = 0;
        for id in 0..self.requests.len() {
            if !self.dirty[id] {
                continue;
            }
            let req = &self.requests[id];
            self.plans[id] = dijkstra::shortest_path_to_any(
                graph,
                req.from,
                Constraints::avoiding_failures(&req.avoid),
                |n| targets(id, n),
            );
            self.dirty[id] = false;
            recomputed += 1;
        }
        recomputed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Square a-b-c-d-a plus a chord b-d.
    fn square() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::with_nodes(4);
        let ids: Vec<_> = g.node_ids().collect();
        g.add_link(ids[0], ids[1], 1.0).unwrap();
        g.add_link(ids[1], ids[2], 1.0).unwrap();
        g.add_link(ids[2], ids[3], 1.0).unwrap();
        g.add_link(ids[3], ids[0], 1.0).unwrap();
        (g, ids)
    }

    #[test]
    fn batch_refresh_computes_all_requests() {
        let (g, ids) = square();
        let (a, b, c, d) = (ids[0], ids[1], ids[2], ids[3]);
        let mut planner = BackupPlanner::new();
        let r1 = planner.insert(DetourRequest {
            from: c,
            avoid: FailureScenario::node(b),
        });
        let r2 = planner.insert(DetourRequest {
            from: b,
            avoid: FailureScenario::node(a),
        });
        assert_eq!(planner.dirty_count(), 2);
        let recomputed = planner.refresh(&g, |_, n| n == a || n == d);
        assert_eq!(recomputed, 2);
        assert_eq!(planner.plan(r1).unwrap().nodes(), &[c, d]);
        assert_eq!(planner.plan(r2).unwrap().nodes(), &[b, c, d]);
        assert_eq!(planner.dirty_count(), 0);
    }

    #[test]
    fn refresh_skips_clean_requests() {
        let (g, ids) = square();
        let (a, b, c, _) = (ids[0], ids[1], ids[2], ids[3]);
        let mut planner = BackupPlanner::new();
        let r1 = planner.insert(DetourRequest {
            from: c,
            avoid: FailureScenario::node(b),
        });
        planner.refresh(&g, |_, n| n == a);
        let r2 = planner.insert(DetourRequest {
            from: b,
            avoid: FailureScenario::none(),
        });
        // Only the new request is dirty; the first plan is not recomputed.
        assert_eq!(planner.refresh(&g, |_, n| n == a), 1);
        assert!(planner.plan(r1).is_some());
        assert!(planner.plan(r2).is_some());
    }

    #[test]
    fn metric_change_refreshes_only_marked_requests() {
        let (mut g, ids) = square();
        let (a, b, c, d) = (ids[0], ids[1], ids[2], ids[3]);
        let mut planner = BackupPlanner::new();
        let id = planner.insert(DetourRequest {
            from: c,
            avoid: FailureScenario::node(b),
        });
        planner.refresh(&g, |_, n| n == a);
        assert_eq!(planner.plan(id).unwrap().nodes(), &[c, d, a]);
        // A new cheap chord c-a changes the best detour, but only once the
        // request is marked dirty and refreshed.
        g.add_link(c, a, 0.5).unwrap();
        assert_eq!(planner.refresh(&g, |_, n| n == a), 0);
        assert_eq!(planner.plan(id).unwrap().nodes(), &[c, d, a]);
        planner.mark_dirty(id);
        assert_eq!(planner.refresh(&g, |_, n| n == a), 1);
        assert_eq!(planner.plan(id).unwrap().nodes(), &[c, a]);
    }

    #[test]
    fn disconnected_contingency_yields_no_plan() {
        let (g, ids) = square();
        let (a, b, c, d) = (ids[0], ids[1], ids[2], ids[3]);
        let mut planner = BackupPlanner::new();
        let id = planner.insert(DetourRequest {
            from: c,
            // Both of c's neighbors gone: no detour can exist.
            avoid: FailureScenario::nodes([b, d]),
        });
        planner.refresh(&g, |_, n| n == a);
        assert!(planner.plan(id).is_none());
    }

    #[test]
    fn mark_all_dirty_recomputes_everything() {
        let (g, ids) = square();
        let (a, b, c, d) = (ids[0], ids[1], ids[2], ids[3]);
        let mut planner = BackupPlanner::new();
        for from in [b, c, d] {
            planner.insert(DetourRequest {
                from,
                avoid: FailureScenario::none(),
            });
        }
        planner.refresh(&g, |_, n| n == a);
        planner.mark_all_dirty();
        assert_eq!(planner.refresh(&g, |_, n| n == a), 3);
    }
}
