//! Waxman random topology generator.
//!
//! The paper generates its flat topologies with GT-ITM's "pure random"
//! Waxman model: `N` nodes placed uniformly at random in a plane, with an
//! edge between `u` and `v` drawn with probability
//!
//! ```text
//! P(u,v) = α · exp(−d(u,v) / (β · L))
//! ```
//!
//! where `d` is Euclidean distance and `L` the maximum pairwise distance.
//! Following the paper (§4.1), `β` is held fixed and `α` is swept to tune
//! the average node degree (Zegura et al. showed a target degree is
//! attainable through different (α, β) combinations).
//!
//! GT-ITM discards disconnected samples; [`WaxmanConfig::generate`] does the
//! same up to a retry budget, then falls back to patching the largest gaps
//! with minimum-distance inter-component links so that low-`α` settings
//! (sparse graphs) still terminate. Patching adds at most
//! `components − 1` links and is recorded in
//! [`GeneratedTopology::patch_links`].

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::error::NetError;
use crate::geometry::{max_pairwise_distance, Point};
use crate::graph::{Graph, LinkWeights};
use crate::ids::{LinkId, NodeId};
use crate::traversal::{connected_components, is_connected};

/// Default fixed `β` (the paper fixes β and sweeps α).
pub const DEFAULT_BETA: f64 = 0.2;

/// Default multiplier converting unit-square Euclidean distance into link
/// delay, giving delays in the "tens of milliseconds" range.
pub const DEFAULT_DELAY_SCALE: f64 = 100.0;

/// Configuration/builder for Waxman topology generation.
///
/// # Example
///
/// ```
/// use smrp_net::waxman::WaxmanConfig;
///
/// # fn main() -> Result<(), smrp_net::NetError> {
/// let topo = WaxmanConfig::new(100).alpha(0.2).seed(7).generate()?;
/// assert_eq!(topo.node_count(), 100);
/// assert!(topo.average_degree() > 1.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WaxmanConfig {
    nodes: usize,
    alpha: f64,
    beta: f64,
    delay_scale: f64,
    unit_cost: bool,
    seed: u64,
    max_attempts: u32,
}

impl WaxmanConfig {
    /// Starts a configuration for `nodes` nodes with the paper's defaults
    /// (`α = 0.2`, fixed `β`).
    pub fn new(nodes: usize) -> Self {
        WaxmanConfig {
            nodes,
            alpha: 0.2,
            beta: DEFAULT_BETA,
            delay_scale: DEFAULT_DELAY_SCALE,
            unit_cost: true,
            seed: 0,
            max_attempts: 200,
        }
    }

    /// Sets the edge-density parameter `α` (0 < α ≤ 1).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the locality parameter `β` (0 < β ≤ 1).
    pub fn beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Sets the delay per unit Euclidean distance.
    pub fn delay_scale(mut self, scale: f64) -> Self {
        self.delay_scale = scale;
        self
    }

    /// Chooses the link-cost convention: `true` (default) assigns every
    /// link unit cost, so the tree cost `Cost_T` counts links — the GT-ITM
    /// convention the paper's setup inherits; `false` sets `cost = delay`.
    pub fn unit_cost(mut self, unit: bool) -> Self {
        self.unit_cost = unit;
        self
    }

    /// Sets the RNG seed; identical configurations produce identical
    /// topologies.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets how many whole-graph redraws to attempt before patching
    /// connectivity.
    pub fn max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    fn validate(&self) -> Result<(), NetError> {
        if self.nodes < 2 {
            return Err(NetError::InvalidParameter {
                name: "nodes",
                reason: "at least two nodes are required",
            });
        }
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(NetError::InvalidParameter {
                name: "alpha",
                reason: "must satisfy 0 < alpha <= 1",
            });
        }
        if !(self.beta > 0.0 && self.beta <= 1.0) {
            return Err(NetError::InvalidParameter {
                name: "beta",
                reason: "must satisfy 0 < beta <= 1",
            });
        }
        if !(self.delay_scale.is_finite() && self.delay_scale > 0.0) {
            return Err(NetError::InvalidParameter {
                name: "delay_scale",
                reason: "must be finite and positive",
            });
        }
        Ok(())
    }

    /// Generates a connected topology.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidParameter`] for out-of-range settings.
    /// Never fails on connectivity: after `max_attempts` redraws the last
    /// sample is patched into connectivity.
    pub fn generate(&self) -> Result<GeneratedTopology, NetError> {
        self.validate()?;
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let (graph, points) = self.sample(&mut rng);
            if is_connected(&graph) {
                return Ok(GeneratedTopology {
                    graph,
                    attempts,
                    patch_links: Vec::new(),
                });
            }
            if attempts >= self.max_attempts {
                let (graph, patch_links) = self.patch(graph, &points);
                return Ok(GeneratedTopology {
                    graph,
                    attempts,
                    patch_links,
                });
            }
        }
    }

    /// Draws one (possibly disconnected) Waxman sample.
    fn sample(&self, rng: &mut SmallRng) -> (Graph, Vec<Point>) {
        let mut graph = Graph::new();
        let mut points = Vec::with_capacity(self.nodes);
        for _ in 0..self.nodes {
            let p = Point::new(rng.gen::<f64>(), rng.gen::<f64>());
            points.push(p);
            graph.add_node_at(p);
        }
        let l = max_pairwise_distance(&points).max(f64::MIN_POSITIVE);
        for i in 0..self.nodes {
            for j in (i + 1)..self.nodes {
                let d = points[i].distance(points[j]);
                let p_edge = self.alpha * (-d / (self.beta * l)).exp();
                if rng.gen::<f64>() < p_edge {
                    graph
                        .add_link_weighted(NodeId::new(i), NodeId::new(j), self.link_weights(d))
                        .expect("generator produces valid links");
                }
            }
        }
        (graph, points)
    }

    fn link_delay(&self, euclidean: f64) -> f64 {
        // Coincident points would yield a zero-delay link, which the graph
        // rejects; clamp to a tiny positive floor.
        (euclidean * self.delay_scale).max(1e-6)
    }

    fn link_weights(&self, euclidean: f64) -> LinkWeights {
        LinkWeights {
            delay: self.link_delay(euclidean),
            cost: if self.unit_cost {
                1.0
            } else {
                self.link_delay(euclidean)
            },
        }
    }

    /// Connects a disconnected sample by repeatedly adding the
    /// minimum-Euclidean-distance link between the first component and the
    /// nearest other component.
    fn patch(&self, mut graph: Graph, points: &[Point]) -> (Graph, Vec<LinkId>) {
        let mut added = Vec::new();
        loop {
            let comps = connected_components(&graph);
            if comps.len() <= 1 {
                break;
            }
            let base = &comps[0];
            let mut best: Option<(f64, NodeId, NodeId)> = None;
            for comp in &comps[1..] {
                for &u in base {
                    for &v in comp {
                        let d = points[u.index()].distance(points[v.index()]);
                        if best.is_none_or(|(bd, _, _)| d < bd) {
                            best = Some((d, u, v));
                        }
                    }
                }
            }
            let (d, u, v) = best.expect("more than one component implies a candidate");
            let link = graph
                .add_link_weighted(u, v, self.link_weights(d))
                .expect("patch endpoints are distinct and unlinked");
            added.push(link);
        }
        (graph, added)
    }
}

/// A generated topology plus provenance information.
#[derive(Debug, Clone)]
pub struct GeneratedTopology {
    graph: Graph,
    attempts: u32,
    patch_links: Vec<LinkId>,
}

impl GeneratedTopology {
    /// The generated connected graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes the wrapper, returning the graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// How many whole-graph samples were drawn.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Links added by the connectivity patch pass (empty when a natural
    /// sample was connected).
    pub fn patch_links(&self) -> &[LinkId] {
        &self.patch_links
    }

    /// Number of nodes (convenience passthrough).
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Average node degree (convenience passthrough, annotated under each α
    /// in the paper's Figure 9).
    pub fn average_degree(&self) -> f64 {
        self.graph.average_degree()
    }
}

impl From<GeneratedTopology> for Graph {
    fn from(t: GeneratedTopology) -> Graph {
        t.graph
    }
}

/// Estimates the average node degree produced by `(alpha, beta)` at size
/// `nodes` by averaging over `samples` seeded draws.
pub fn estimate_average_degree(
    nodes: usize,
    alpha: f64,
    beta: f64,
    samples: u32,
    seed: u64,
) -> f64 {
    let mut total = 0.0;
    for i in 0..samples {
        let topo = WaxmanConfig::new(nodes)
            .alpha(alpha)
            .beta(beta)
            .seed(seed.wrapping_add(i as u64))
            .generate()
            .expect("valid parameters");
        total += topo.average_degree();
    }
    total / samples.max(1) as f64
}

/// Finds an `α` whose expected average degree is close to `target_degree`
/// (used for the paper's "even when average node degree goes up to 10"
/// claim in §4.3.3).
///
/// Binary-searches `α ∈ (0, 1]`; the returned `α` is accurate to about
/// ±0.005 in `α`, not in degree.
pub fn calibrate_alpha(nodes: usize, beta: f64, target_degree: f64, seed: u64) -> f64 {
    let mut lo = 0.01;
    let mut hi = 1.0;
    for _ in 0..12 {
        let mid = 0.5 * (lo + hi);
        let deg = estimate_average_degree(nodes, mid, beta, 3, seed);
        if deg < target_degree {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_graph_is_connected_and_sized() {
        let topo = WaxmanConfig::new(100)
            .alpha(0.2)
            .seed(1)
            .generate()
            .unwrap();
        assert_eq!(topo.node_count(), 100);
        assert!(is_connected(topo.graph()));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = WaxmanConfig::new(50)
            .alpha(0.25)
            .seed(9)
            .generate()
            .unwrap();
        let b = WaxmanConfig::new(50)
            .alpha(0.25)
            .seed(9)
            .generate()
            .unwrap();
        assert_eq!(a.graph().link_count(), b.graph().link_count());
        for (la, lb) in a.graph().link_ids().zip(b.graph().link_ids()) {
            assert_eq!(
                a.graph().link(la).endpoints(),
                b.graph().link(lb).endpoints()
            );
            assert_eq!(a.graph().link(la).delay(), b.graph().link(lb).delay());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = WaxmanConfig::new(50)
            .alpha(0.25)
            .seed(1)
            .generate()
            .unwrap();
        let b = WaxmanConfig::new(50)
            .alpha(0.25)
            .seed(2)
            .generate()
            .unwrap();
        // Overwhelmingly likely to differ in link count; if equal, check
        // endpoints.
        let same = a.graph().link_count() == b.graph().link_count()
            && a.graph()
                .link_ids()
                .zip(b.graph().link_ids())
                .all(|(la, lb)| a.graph().link(la).endpoints() == b.graph().link(lb).endpoints());
        assert!(!same);
    }

    #[test]
    fn higher_alpha_means_denser_graph() {
        let sparse = estimate_average_degree(80, 0.15, DEFAULT_BETA, 3, 5);
        let dense = estimate_average_degree(80, 0.4, DEFAULT_BETA, 3, 5);
        assert!(
            dense > sparse,
            "expected density to grow with alpha: {sparse} vs {dense}"
        );
    }

    #[test]
    fn delays_reflect_euclidean_distance() {
        let topo = WaxmanConfig::new(40).alpha(0.3).seed(3).generate().unwrap();
        let g = topo.graph();
        for l in g.link_ids() {
            if topo.patch_links().contains(&l) {
                continue;
            }
            let link = g.link(l);
            let pa = g.position(link.a()).unwrap();
            let pb = g.position(link.b()).unwrap();
            let expected = (pa.distance(pb) * DEFAULT_DELAY_SCALE).max(1e-6);
            assert!((link.delay() - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(WaxmanConfig::new(1).generate().is_err());
        assert!(WaxmanConfig::new(10).alpha(0.0).generate().is_err());
        assert!(WaxmanConfig::new(10).alpha(1.5).generate().is_err());
        assert!(WaxmanConfig::new(10).beta(0.0).generate().is_err());
        assert!(WaxmanConfig::new(10).delay_scale(-1.0).generate().is_err());
    }

    #[test]
    fn patching_connects_sparse_graphs() {
        // Tiny alpha at small attempt budget forces the patch path.
        let topo = WaxmanConfig::new(30)
            .alpha(0.02)
            .seed(11)
            .max_attempts(2)
            .generate()
            .unwrap();
        assert!(is_connected(topo.graph()));
    }

    #[test]
    fn calibrate_alpha_reaches_target_degree() {
        let alpha = calibrate_alpha(60, DEFAULT_BETA, 6.0, 17);
        let deg = estimate_average_degree(60, alpha, DEFAULT_BETA, 4, 23);
        assert!(
            (deg - 6.0).abs() < 2.0,
            "calibrated alpha {alpha} gives degree {deg}, wanted about 6"
        );
    }

    #[test]
    fn paper_alphas_give_moderate_degrees() {
        // Sanity check that the paper's swept alphas (0.15..0.3) land in a
        // plausible average-degree band with the fixed beta.
        for &alpha in &[0.15, 0.2, 0.25, 0.3] {
            let deg = estimate_average_degree(100, alpha, DEFAULT_BETA, 2, 31);
            assert!(
                (1.5..9.0).contains(&deg),
                "alpha {alpha} gave implausible degree {deg}"
            );
        }
    }
}
