//! Dijkstra shortest-path machinery.
//!
//! Three query styles are provided, matching what the SMRP algorithms need:
//!
//! * [`shortest_path`] / [`shortest_path_constrained`] — point-to-point
//!   shortest path by delay, optionally under a [`FailureScenario`] and
//!   forbidden-node/link sets (used for detour paths that must avoid the
//!   faulty component, and for merger-candidate paths that must not cross
//!   other on-tree nodes);
//! * [`ShortestPathTree`] — full single-source tree with path extraction
//!   (used by the SPF baseline protocol and by the neighbor-query scheme);
//! * [`shortest_path_to_any`] — shortest path from a source to the nearest
//!   member of a target set (used by local-detour recovery: "connect to the
//!   nearest still-connected on-tree node").
//!
//! All ties are broken deterministically (lower node id wins), so results
//! are stable across runs for a fixed topology.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::failure::FailureScenario;
use crate::graph::Graph;
use crate::ids::{LinkId, NodeId};
use crate::path::Path;

/// Search-space restrictions for a constrained shortest-path query.
///
/// A node listed in `forbidden_nodes` may not appear anywhere on the path
/// (not even as an endpoint — strip endpoints before calling if they should
/// be allowed). A link in `forbidden_links` may not be crossed. A failure
/// scenario removes its failed components entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct Constraints<'a> {
    /// Failure scenario masking out broken components.
    pub failures: Option<&'a FailureScenario>,
    /// Nodes the path must not visit.
    pub forbidden_nodes: &'a [NodeId],
    /// Links the path must not cross.
    pub forbidden_links: &'a [LinkId],
}

impl<'a> Constraints<'a> {
    /// No restrictions.
    pub fn unrestricted() -> Self {
        Constraints::default()
    }

    /// Restrict only by a failure scenario.
    pub fn avoiding_failures(failures: &'a FailureScenario) -> Self {
        Constraints {
            failures: Some(failures),
            ..Constraints::default()
        }
    }

    fn node_allowed(&self, node: NodeId) -> bool {
        if let Some(f) = self.failures {
            if !f.node_usable(node) {
                return false;
            }
        }
        !self.forbidden_nodes.contains(&node)
    }

    fn link_allowed(&self, graph: &Graph, link: LinkId) -> bool {
        if let Some(f) = self.failures {
            if !f.link_usable(graph, link) {
                return false;
            }
        }
        !self.forbidden_links.contains(&link)
    }
}

/// Heap entry ordered for a min-heap over (distance, node id).
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on distance for a min-heap; lower node id wins ties so
        // exploration order (and therefore tie-broken paths) is
        // deterministic.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A single-source shortest-path tree by link delay.
///
/// Produced by [`ShortestPathTree::compute`]; answers distance and path
/// queries to every reachable node.
///
/// # Example
///
/// ```
/// use smrp_net::{Graph, dijkstra::ShortestPathTree};
///
/// # fn main() -> Result<(), smrp_net::NetError> {
/// let mut g = Graph::with_nodes(3);
/// let ids: Vec<_> = g.node_ids().collect();
/// g.add_link(ids[0], ids[1], 1.0)?;
/// g.add_link(ids[1], ids[2], 1.0)?;
/// let spt = ShortestPathTree::compute(&g, ids[0]);
/// assert_eq!(spt.distance(ids[2]), Some(2.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    source: NodeId,
    dist: Vec<f64>,
    parent: Vec<Option<NodeId>>,
}

impl ShortestPathTree {
    /// Runs Dijkstra from `source` with no restrictions.
    pub fn compute(graph: &Graph, source: NodeId) -> Self {
        Self::compute_constrained(graph, source, Constraints::unrestricted())
    }

    /// Runs Dijkstra from `source` under `constraints`.
    ///
    /// If the source itself is forbidden the resulting tree reaches nothing.
    pub fn compute_constrained(
        graph: &Graph,
        source: NodeId,
        constraints: Constraints<'_>,
    ) -> Self {
        let n = graph.node_count();
        let mut spt = ShortestPathTree {
            source,
            dist: vec![f64::INFINITY; n],
            parent: vec![None; n],
        };
        spt.recompute_constrained(graph, constraints);
        spt
    }

    /// Re-runs Dijkstra from the same source, reusing this tree's buffers.
    ///
    /// This is the refresh half of the caching contract used by the session
    /// types: callers cache one source SPT, answer distance/path queries
    /// from it, and call this (typically via their `refresh_spt` hook) when
    /// the set of usable links/nodes changes — e.g. when a
    /// [`FailureScenario`] strikes — so no stale routing state survives.
    pub fn recompute_constrained(&mut self, graph: &Graph, constraints: Constraints<'_>) {
        let n = graph.node_count();
        assert_eq!(n, self.dist.len(), "graph size changed under the SPT");
        self.dist.fill(f64::INFINITY);
        self.parent.fill(None);
        let mut done = vec![false; n];
        let mut heap = BinaryHeap::new();

        if constraints.node_allowed(self.source) {
            self.dist[self.source.index()] = 0.0;
            heap.push(HeapEntry {
                dist: 0.0,
                node: self.source,
            });
        }

        while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
            if done[u.index()] {
                continue;
            }
            done[u.index()] = true;
            for &(v, l) in graph.adjacency(u) {
                if done[v.index()]
                    || !constraints.node_allowed(v)
                    || !constraints.link_allowed(graph, l)
                {
                    continue;
                }
                let nd = d + graph.link(l).delay();
                let slot = &mut self.dist[v.index()];
                // Deterministic tie-break: on equal distance keep the parent
                // with the lower node id.
                if nd < *slot || (nd == *slot && self.parent[v.index()].is_some_and(|p| u < p)) {
                    *slot = nd;
                    self.parent[v.index()] = Some(u);
                    heap.push(HeapEntry { dist: nd, node: v });
                }
            }
        }
    }

    /// The source node this tree was computed from.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Shortest distance to `node`, or `None` if unreachable.
    pub fn distance(&self, node: NodeId) -> Option<f64> {
        let d = self.dist[node.index()];
        d.is_finite().then_some(d)
    }

    /// Parent of `node` in the shortest-path tree.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node.index()]
    }

    /// Extracts the source→`node` path, or `None` if unreachable.
    pub fn path_to(&self, node: NodeId) -> Option<Path> {
        if !self.dist[node.index()].is_finite() {
            return None;
        }
        let mut nodes = vec![node];
        let mut cur = node;
        while let Some(p) = self.parent[cur.index()] {
            nodes.push(p);
            cur = p;
        }
        if cur != self.source {
            return None;
        }
        nodes.reverse();
        Some(Path::new(nodes))
    }

    /// Iterator over all reachable nodes (including the source).
    pub fn reachable(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.dist
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_finite())
            .map(|(i, _)| NodeId::new(i))
    }
}

/// Point-to-point shortest path by delay.
///
/// Returns `None` when `dst` is unreachable from `src`.
pub fn shortest_path(graph: &Graph, src: NodeId, dst: NodeId) -> Option<Path> {
    shortest_path_constrained(graph, src, dst, Constraints::unrestricted())
}

/// Point-to-point shortest path under constraints.
///
/// Returns `None` when `dst` is unreachable under the constraints.
pub fn shortest_path_constrained(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    constraints: Constraints<'_>,
) -> Option<Path> {
    if src == dst {
        return constraints.node_allowed(src).then(|| Path::trivial(src));
    }
    ShortestPathTree::compute_constrained(graph, src, constraints).path_to(dst)
}

/// Shortest distance between two nodes, or `None` if disconnected.
pub fn distance(graph: &Graph, src: NodeId, dst: NodeId) -> Option<f64> {
    ShortestPathTree::compute(graph, src).distance(dst)
}

/// Shortest path from `src` to the nearest node for which `is_target`
/// returns `true`, under `constraints`.
///
/// The source itself is a valid target: if `is_target(src)` the trivial path
/// is returned. Used by local-detour recovery to reach the nearest
/// still-connected on-tree node.
pub fn shortest_path_to_any<F>(
    graph: &Graph,
    src: NodeId,
    constraints: Constraints<'_>,
    mut is_target: F,
) -> Option<Path>
where
    F: FnMut(NodeId) -> bool,
{
    if !constraints.node_allowed(src) {
        return None;
    }
    if is_target(src) {
        return Some(Path::trivial(src));
    }
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: src,
    });

    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if done[u.index()] {
            continue;
        }
        done[u.index()] = true;
        if u != src && is_target(u) {
            // Settled order is by distance, so the first settled target is
            // the nearest one.
            let mut nodes = vec![u];
            let mut cur = u;
            while let Some(p) = parent[cur.index()] {
                nodes.push(p);
                cur = p;
            }
            nodes.reverse();
            return Some(Path::new(nodes));
        }
        for &(v, l) in graph.adjacency(u) {
            if done[v.index()]
                || !constraints.node_allowed(v)
                || !constraints.link_allowed(graph, l)
            {
                continue;
            }
            let nd = d + graph.link(l).delay();
            if nd < dist[v.index()]
                || (nd == dist[v.index()] && parent[v.index()].is_some_and(|p| u < p))
            {
                dist[v.index()] = nd;
                parent[v.index()] = Some(u);
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 1 graph of the paper: S, A, B, C, D with delays chosen so
    /// that D's shortest path runs through A, the post-failure SPF detour is
    /// D->B->S, and the local detour D->C has length 2.
    fn figure1_graph() -> (Graph, [NodeId; 5]) {
        let mut g = Graph::with_nodes(5);
        let ids: Vec<_> = g.node_ids().collect();
        let [s, a, b, c, d] = [ids[0], ids[1], ids[2], ids[3], ids[4]];
        g.add_link(s, a, 1.0).unwrap();
        g.add_link(a, c, 1.0).unwrap();
        g.add_link(a, d, 1.0).unwrap();
        g.add_link(c, d, 2.0).unwrap();
        g.add_link(d, b, 1.0).unwrap();
        g.add_link(b, s, 2.0).unwrap();
        (g, [s, a, b, c, d])
    }

    #[test]
    fn shortest_path_prefers_low_delay() {
        let (g, [s, a, _, _, d]) = figure1_graph();
        let p = shortest_path(&g, s, d).unwrap();
        assert_eq!(p.nodes(), &[s, a, d]);
        assert_eq!(p.delay(&g), 2.0);
    }

    #[test]
    fn constrained_path_avoids_failed_link() {
        let (g, [s, a, b, _, d]) = figure1_graph();
        let l_ad = g.link_between(a, d).unwrap();
        let failures = FailureScenario::link(l_ad);
        let p =
            shortest_path_constrained(&g, d, s, Constraints::avoiding_failures(&failures)).unwrap();
        // Global detour from Figure 1(b): D -> B -> S with delay 3.
        assert_eq!(p.nodes(), &[d, b, s]);
        assert_eq!(p.delay(&g), 3.0);
    }

    #[test]
    fn constrained_path_avoids_forbidden_nodes() {
        let (g, [s, a, b, _, d]) = figure1_graph();
        let forbidden = [a];
        let p = shortest_path_constrained(
            &g,
            d,
            s,
            Constraints {
                forbidden_nodes: &forbidden,
                ..Constraints::default()
            },
        )
        .unwrap();
        assert_eq!(p.nodes(), &[d, b, s]);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut g = Graph::with_nodes(2);
        let ids: Vec<_> = g.node_ids().collect();
        assert!(shortest_path(&g, ids[0], ids[1]).is_none());
        assert_eq!(distance(&g, ids[0], ids[1]), None);
        let _ = &mut g;
    }

    #[test]
    fn same_node_is_trivial_path() {
        let (g, [s, ..]) = figure1_graph();
        let p = shortest_path(&g, s, s).unwrap();
        assert_eq!(p.hop_count(), 0);
    }

    #[test]
    fn forbidden_source_means_no_path() {
        let (g, [s, _, _, _, d]) = figure1_graph();
        let forbidden = [d];
        assert!(shortest_path_constrained(
            &g,
            d,
            s,
            Constraints {
                forbidden_nodes: &forbidden,
                ..Constraints::default()
            }
        )
        .is_none());
    }

    #[test]
    fn tree_distances_match_point_queries() {
        let (g, nodes) = figure1_graph();
        let spt = ShortestPathTree::compute(&g, nodes[0]);
        for &n in &nodes {
            let d1 = spt.distance(n);
            let d2 = distance(&g, nodes[0], n);
            assert_eq!(d1, d2);
            if let Some(p) = spt.path_to(n) {
                assert_eq!(p.delay(&g), d1.unwrap());
                assert!(p.validate(&g).is_ok());
            }
        }
    }

    #[test]
    fn multi_target_finds_nearest() {
        let (g, [s, a, _b, c, d]) = figure1_graph();
        let l_ad = g.link_between(a, d).unwrap();
        let failures = FailureScenario::link(l_ad);
        // On-tree connected nodes after L_AD fails: S, A, C.
        let targets = [s, a, c];
        let p = shortest_path_to_any(&g, d, Constraints::avoiding_failures(&failures), |n| {
            targets.contains(&n)
        })
        .unwrap();
        // Local detour from Figure 1: D -> C with recovery distance 2
        // (beats D -> B -> S whose first on-tree touch is S at delay 3).
        assert_eq!(p.nodes(), &[d, c]);
        assert_eq!(p.delay(&g), 2.0);
    }

    #[test]
    fn multi_target_source_is_target() {
        let (g, [s, ..]) = figure1_graph();
        let p = shortest_path_to_any(&g, s, Constraints::unrestricted(), |n| n == s).unwrap();
        assert_eq!(p.hop_count(), 0);
    }

    #[test]
    fn multi_target_no_target_reachable() {
        let (g, [s, _, _, _, d]) = figure1_graph();
        let p = shortest_path_to_any(&g, d, Constraints::unrestricted(), |_| false);
        assert!(p.is_none());
        let _ = (s, g);
    }

    #[test]
    fn forbidden_link_is_respected() {
        let (g, [s, a, _, _, d]) = figure1_graph();
        let l_sa = g.link_between(s, a).unwrap();
        let forbidden = [l_sa];
        let p = shortest_path_constrained(
            &g,
            s,
            d,
            Constraints {
                forbidden_links: &forbidden,
                ..Constraints::default()
            },
        )
        .unwrap();
        assert!(!p.links(&g).contains(&l_sa));
    }

    #[test]
    fn reachable_enumerates_component() {
        let mut g = Graph::with_nodes(4);
        let ids: Vec<_> = g.node_ids().collect();
        g.add_link(ids[0], ids[1], 1.0).unwrap();
        // ids[2], ids[3] isolated from ids[0].
        g.add_link(ids[2], ids[3], 1.0).unwrap();
        let spt = ShortestPathTree::compute(&g, ids[0]);
        let reach: Vec<_> = spt.reachable().collect();
        assert_eq!(reach, vec![ids[0], ids[1]]);
    }

    #[test]
    fn failed_node_blocks_paths() {
        let (g, [s, a, b, _, d]) = figure1_graph();
        let mut failures = FailureScenario::node(a);
        failures.fail_node(b);
        let p = shortest_path_constrained(&g, s, d, Constraints::avoiding_failures(&failures));
        assert!(p.is_none());
    }
}
