//! Persistent-failure scenarios.
//!
//! The paper studies *persistent* failures — cable cuts, router crashes —
//! that disable a link or node for a long period. A [`FailureScenario`] is a
//! mask over an immutable [`Graph`]: it records which links and nodes are
//! down and answers usability queries for the path-finding routines, so one
//! topology can be evaluated under many failure cases without copying.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::graph::Graph;
use crate::ids::{LinkId, NodeId};

/// A set of simultaneously failed links and nodes.
///
/// A failed node implicitly disables every link incident to it (the paper's
/// footnote 1: node failure covers both physical breakdown and service
/// unavailability).
///
/// # Example
///
/// ```
/// use smrp_net::{Graph, FailureScenario};
///
/// # fn main() -> Result<(), smrp_net::NetError> {
/// let mut g = Graph::with_nodes(3);
/// let ids: Vec<_> = g.node_ids().collect();
/// let l = g.add_link(ids[0], ids[1], 1.0)?;
/// let scenario = FailureScenario::link(l);
/// assert!(!scenario.link_usable(&g, l));
/// assert!(scenario.node_usable(ids[0]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureScenario {
    failed_links: BTreeSet<LinkId>,
    failed_nodes: BTreeSet<NodeId>,
}

impl FailureScenario {
    /// The empty scenario: nothing has failed.
    pub fn none() -> Self {
        FailureScenario::default()
    }

    /// Scenario with a single failed link.
    pub fn link(link: LinkId) -> Self {
        let mut s = FailureScenario::default();
        s.fail_link(link);
        s
    }

    /// Scenario with a single failed node.
    pub fn node(node: NodeId) -> Self {
        let mut s = FailureScenario::default();
        s.fail_node(node);
        s
    }

    /// Scenario failing every link in `links` (duplicates collapse).
    pub fn links<I: IntoIterator<Item = LinkId>>(links: I) -> Self {
        let mut s = FailureScenario::default();
        for l in links {
            s.fail_link(l);
        }
        s
    }

    /// Scenario failing every node in `nodes` (duplicates collapse).
    pub fn nodes<I: IntoIterator<Item = NodeId>>(nodes: I) -> Self {
        let mut s = FailureScenario::default();
        for n in nodes {
            s.fail_node(n);
        }
        s
    }

    /// Marks `link` as failed. Idempotent: failing an already-failed link
    /// is a no-op (the sets dedupe), so correlated fault generators may
    /// blindly union overlapping failure groups.
    pub fn fail_link(&mut self, link: LinkId) -> &mut Self {
        self.failed_links.insert(link);
        self
    }

    /// Marks `node` (and implicitly all its incident links) as failed.
    /// Idempotent, like [`fail_link`](Self::fail_link).
    pub fn fail_node(&mut self, node: NodeId) -> &mut Self {
        self.failed_nodes.insert(node);
        self
    }

    /// Owned-`self` counterpart of [`fail_link`](Self::fail_link) for
    /// expression-style construction:
    /// `FailureScenario::none().with_link(a).with_link(b)`.
    #[must_use]
    pub fn with_link(mut self, link: LinkId) -> Self {
        self.fail_link(link);
        self
    }

    /// Owned-`self` counterpart of [`fail_node`](Self::fail_node).
    #[must_use]
    pub fn with_node(mut self, node: NodeId) -> Self {
        self.fail_node(node);
        self
    }

    /// Clears a link failure (a repaired cable). Removes only a direct
    /// link failure; links disabled by a node failure stay down until the
    /// node is repaired.
    pub fn repair_link(&mut self, link: LinkId) -> &mut Self {
        self.failed_links.remove(&link);
        self
    }

    /// Clears a node failure (a rebooted router).
    pub fn repair_node(&mut self, node: NodeId) -> &mut Self {
        self.failed_nodes.remove(&node);
        self
    }

    /// Whether nothing has failed.
    pub fn is_empty(&self) -> bool {
        self.failed_links.is_empty() && self.failed_nodes.is_empty()
    }

    /// Explicitly failed links (not counting links disabled by node
    /// failures).
    pub fn failed_links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.failed_links.iter().copied()
    }

    /// Failed nodes.
    pub fn failed_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.failed_nodes.iter().copied()
    }

    /// Whether `node` is still operational.
    #[inline]
    pub fn node_usable(&self, node: NodeId) -> bool {
        !self.failed_nodes.contains(&node)
    }

    /// Whether `link` is still operational in `graph`.
    ///
    /// A link is unusable if it failed directly or if either endpoint
    /// failed.
    #[inline]
    pub fn link_usable(&self, graph: &Graph, link: LinkId) -> bool {
        if self.failed_links.contains(&link) {
            return false;
        }
        let l = graph.link(link);
        self.node_usable(l.a()) && self.node_usable(l.b())
    }

    /// Whether a path (as a node sequence) survives this scenario in
    /// `graph`.
    pub fn path_usable(&self, graph: &Graph, nodes: &[NodeId]) -> bool {
        if nodes.iter().any(|n| !self.node_usable(*n)) {
            return false;
        }
        nodes.windows(2).all(|w| {
            graph
                .link_between(w[0], w[1])
                .is_some_and(|l| self.link_usable(graph, l))
        })
    }

    /// Merges another scenario into this one (set union, so overlapping
    /// failures dedupe). Returns `&mut Self` so merges chain:
    /// `s.merge(&a).merge(&b)`.
    pub fn merge(&mut self, other: &FailureScenario) -> &mut Self {
        self.failed_links.extend(other.failed_links.iter().copied());
        self.failed_nodes.extend(other.failed_nodes.iter().copied());
        self
    }

    /// Owned-`self` counterpart of [`merge`](Self::merge):
    /// `a.merged(&b).merged(&c)` builds the union without a binding.
    #[must_use]
    pub fn merged(mut self, other: &FailureScenario) -> Self {
        self.merge(other);
        self
    }
}

impl std::fmt::Display for FailureScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "no failures");
        }
        let mut first = true;
        for l in &self.failed_links {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{l} down")?;
            first = false;
        }
        for n in &self.failed_nodes {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{n} down")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> (Graph, Vec<NodeId>, Vec<LinkId>) {
        let mut g = Graph::with_nodes(4);
        let ids: Vec<_> = g.node_ids().collect();
        let mut links = Vec::new();
        for w in ids.windows(2) {
            links.push(g.add_link(w[0], w[1], 1.0).unwrap());
        }
        (g, ids, links)
    }

    #[test]
    fn empty_scenario_blocks_nothing() {
        let (g, ids, links) = path_graph();
        let s = FailureScenario::none();
        assert!(s.is_empty());
        assert!(links.iter().all(|&l| s.link_usable(&g, l)));
        assert!(s.path_usable(&g, &ids));
    }

    #[test]
    fn failed_link_blocks_paths_through_it() {
        let (g, ids, links) = path_graph();
        let s = FailureScenario::link(links[1]);
        assert!(!s.link_usable(&g, links[1]));
        assert!(s.link_usable(&g, links[0]));
        assert!(!s.path_usable(&g, &ids));
        assert!(s.path_usable(&g, &ids[..2]));
    }

    #[test]
    fn failed_node_disables_incident_links() {
        let (g, ids, links) = path_graph();
        let s = FailureScenario::node(ids[1]);
        assert!(!s.node_usable(ids[1]));
        assert!(!s.link_usable(&g, links[0]));
        assert!(!s.link_usable(&g, links[1]));
        assert!(s.link_usable(&g, links[2]));
    }

    #[test]
    fn path_with_failed_node_is_unusable() {
        let (g, ids, _) = path_graph();
        let s = FailureScenario::node(ids[2]);
        assert!(!s.path_usable(&g, &ids));
        assert!(s.path_usable(&g, &ids[..2]));
    }

    #[test]
    fn path_with_missing_link_is_unusable() {
        let (g, ids, _) = path_graph();
        let s = FailureScenario::none();
        assert!(!s.path_usable(&g, &[ids[0], ids[2]]));
    }

    #[test]
    fn merge_unions_failures() {
        let (_, ids, links) = path_graph();
        let mut a = FailureScenario::link(links[0]);
        let b = FailureScenario::node(ids[3]);
        a.merge(&b);
        assert_eq!(a.failed_links().count(), 1);
        assert_eq!(a.failed_nodes().count(), 1);
    }

    #[test]
    fn display_lists_failures() {
        let (_, ids, links) = path_graph();
        assert_eq!(FailureScenario::none().to_string(), "no failures");
        let mut s = FailureScenario::link(links[0]);
        s.fail_node(ids[2]);
        let text = s.to_string();
        assert!(text.contains("l0 down"));
        assert!(text.contains("n2 down"));
    }

    #[test]
    fn builder_style_chaining() {
        let mut s = FailureScenario::none();
        s.fail_link(LinkId::new(1)).fail_node(NodeId::new(2));
        assert!(!s.is_empty());
    }

    #[test]
    fn repeated_failures_dedupe() {
        let (_, ids, links) = path_graph();
        let mut s = FailureScenario::none();
        s.fail_link(links[0])
            .fail_link(links[0])
            .fail_link(links[0]);
        s.fail_node(ids[1]).fail_node(ids[1]);
        assert_eq!(s.failed_links().count(), 1);
        assert_eq!(s.failed_nodes().count(), 1);
    }

    #[test]
    fn owned_combinators_match_mut_builders() {
        let (_, ids, links) = path_graph();
        let owned = FailureScenario::none()
            .with_link(links[0])
            .with_link(links[0]) // idempotent here too
            .with_node(ids[2]);
        let mut built = FailureScenario::none();
        built.fail_link(links[0]).fail_node(ids[2]);
        assert_eq!(owned, built);
    }

    #[test]
    fn bulk_constructors_collapse_duplicates() {
        let (_, ids, links) = path_graph();
        let s = FailureScenario::links([links[0], links[1], links[0]]);
        assert_eq!(s.failed_links().count(), 2);
        let s = FailureScenario::nodes([ids[0], ids[0]]);
        assert_eq!(s.failed_nodes().count(), 1);
    }

    #[test]
    fn repair_undoes_direct_failures_only() {
        let (g, ids, links) = path_graph();
        let mut s = FailureScenario::none();
        s.fail_link(links[1]).fail_node(ids[0]);
        assert!(!s.link_usable(&g, links[1]));
        s.repair_link(links[1]);
        assert!(s.link_usable(&g, links[1]));
        // links[0] touches the failed node ids[0]: repairing the link id
        // has no effect while the endpoint is down.
        s.fail_link(links[0]);
        s.repair_link(links[0]);
        assert!(!s.link_usable(&g, links[0]));
        s.repair_node(ids[0]);
        assert!(s.link_usable(&g, links[0]));
        assert!(s.is_empty());
    }

    #[test]
    fn merge_chains_and_merged_builds_unions() {
        let (_, ids, links) = path_graph();
        let a = FailureScenario::link(links[0]);
        let b = FailureScenario::node(ids[3]);
        let c = FailureScenario::link(links[0]); // overlaps a
        let mut chained = FailureScenario::none();
        chained.merge(&a).merge(&b).merge(&c);
        let owned = FailureScenario::none().merged(&a).merged(&b).merged(&c);
        assert_eq!(chained, owned);
        assert_eq!(chained.failed_links().count(), 1);
        assert_eq!(chained.failed_nodes().count(), 1);
    }

    #[test]
    fn merged_scenario_blocks_paths_with_mixed_failures() {
        let (g, ids, links) = path_graph();
        // Link n2-n3 down and node n1 down, merged from two scenarios.
        let s = FailureScenario::link(links[2]).merged(&FailureScenario::node(ids[1]));
        // Whole path crosses both failures.
        assert!(!s.path_usable(&g, &ids));
        // n0-n1 is blocked by the node failure alone.
        assert!(!s.path_usable(&g, &ids[..2]));
        // n1-n2 blocked (endpoint down), n2-n3 blocked (link down).
        assert!(!s.path_usable(&g, &ids[1..3]));
        assert!(!s.path_usable(&g, &ids[2..4]));
        // The single surviving node is still a usable (trivial) path.
        assert!(s.path_usable(&g, &ids[2..3]));
        assert!(s.path_usable(&g, &ids[3..4]));
    }
}
