//! Breadth-first traversal, connectivity and component queries.

use std::collections::VecDeque;

use crate::dijkstra::Constraints;
use crate::graph::Graph;
use crate::ids::NodeId;

/// Nodes reachable from `start` under `constraints`, in BFS order.
///
/// Returns an empty vector when the start node itself is forbidden.
pub fn reachable_from(graph: &Graph, start: NodeId, constraints: Constraints<'_>) -> Vec<NodeId> {
    let mut visited = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    if !node_allowed(constraints, start) {
        return order;
    }
    visited[start.index()] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &(v, l) in graph.adjacency(u) {
            if visited[v.index()] || !node_allowed(constraints, v) {
                continue;
            }
            if !link_allowed(graph, constraints, l) {
                continue;
            }
            visited[v.index()] = true;
            queue.push_back(v);
        }
    }
    order
}

fn node_allowed(c: Constraints<'_>, n: NodeId) -> bool {
    if let Some(f) = c.failures {
        if !f.node_usable(n) {
            return false;
        }
    }
    !c.forbidden_nodes.contains(&n)
}

fn link_allowed(g: &Graph, c: Constraints<'_>, l: crate::ids::LinkId) -> bool {
    if let Some(f) = c.failures {
        if !f.link_usable(g, l) {
            return false;
        }
    }
    !c.forbidden_links.contains(&l)
}

/// Whether the whole graph is a single connected component.
///
/// An empty graph counts as connected; a graph with isolated nodes does not.
pub fn is_connected(graph: &Graph) -> bool {
    let n = graph.node_count();
    if n == 0 {
        return true;
    }
    reachable_from(graph, NodeId::new(0), Constraints::unrestricted()).len() == n
}

/// Partition of the graph's nodes into connected components.
///
/// Components are listed in order of their smallest node id, and each
/// component lists nodes in BFS order from that smallest id.
pub fn connected_components(graph: &Graph) -> Vec<Vec<NodeId>> {
    let mut seen = vec![false; graph.node_count()];
    let mut components = Vec::new();
    for start in graph.node_ids() {
        if seen[start.index()] {
            continue;
        }
        let comp = reachable_from(graph, start, Constraints::unrestricted());
        for n in &comp {
            seen[n.index()] = true;
        }
        components.push(comp);
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::FailureScenario;

    fn two_islands() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::with_nodes(5);
        let ids: Vec<_> = g.node_ids().collect();
        g.add_link(ids[0], ids[1], 1.0).unwrap();
        g.add_link(ids[1], ids[2], 1.0).unwrap();
        g.add_link(ids[3], ids[4], 1.0).unwrap();
        (g, ids)
    }

    #[test]
    fn reachable_respects_components() {
        let (g, ids) = two_islands();
        let r = reachable_from(&g, ids[0], Constraints::unrestricted());
        assert_eq!(r, vec![ids[0], ids[1], ids[2]]);
    }

    #[test]
    fn disconnected_graph_is_not_connected() {
        let (g, _) = two_islands();
        assert!(!is_connected(&g));
    }

    #[test]
    fn empty_and_single_node_graphs_are_connected() {
        assert!(is_connected(&Graph::new()));
        assert!(is_connected(&Graph::with_nodes(1)));
        assert!(!is_connected(&Graph::with_nodes(2)));
    }

    #[test]
    fn components_partition_nodes() {
        let (g, ids) = two_islands();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![ids[0], ids[1], ids[2]]);
        assert_eq!(comps[1], vec![ids[3], ids[4]]);
        let total: usize = comps.iter().map(Vec::len).sum();
        assert_eq!(total, g.node_count());
    }

    #[test]
    fn failure_splits_reachability() {
        let (g, ids) = two_islands();
        let l = g.link_between(ids[1], ids[2]).unwrap();
        let f = FailureScenario::link(l);
        let r = reachable_from(&g, ids[0], Constraints::avoiding_failures(&f));
        assert_eq!(r, vec![ids[0], ids[1]]);
    }

    #[test]
    fn forbidden_start_yields_empty() {
        let (g, ids) = two_islands();
        let forbidden = [ids[0]];
        let r = reachable_from(
            &g,
            ids[0],
            Constraints {
                forbidden_nodes: &forbidden,
                ..Constraints::default()
            },
        );
        assert!(r.is_empty());
    }

    #[test]
    fn failed_node_is_unreachable() {
        let (g, ids) = two_islands();
        let f = FailureScenario::node(ids[1]);
        let r = reachable_from(&g, ids[0], Constraints::avoiding_failures(&f));
        assert_eq!(r, vec![ids[0]]);
    }
}
