//! Property tests for the SMRP core algorithms.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use smrp_core::recovery::{self, DetourKind};
use smrp_core::select::{self, SelectionMode};
use smrp_core::{SmrpConfig, SmrpSession, SpfSession, SteinerSession};
use smrp_net::waxman::WaxmanConfig;
use smrp_net::{FailureScenario, Graph, NodeId};

fn waxman(seed: u64, nodes: usize) -> Graph {
    WaxmanConfig::new(nodes)
        .alpha(0.3)
        .seed(seed)
        .generate()
        .expect("valid generator settings")
        .into_graph()
}

fn pick(graph: &Graph, count: usize) -> (NodeId, Vec<NodeId>) {
    let ids: Vec<NodeId> = graph.node_ids().collect();
    (
        ids[0],
        ids.iter().copied().skip(1).step_by(2).take(count).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn candidates_are_sound(seed in 0u64..400, joiner in 2usize..20) {
        let graph = waxman(seed, 20);
        let (source, members) = pick(&graph, 4);
        let mut sess = SmrpSession::new(&graph, source, SmrpConfig::default()).unwrap();
        for &m in &members {
            sess.join(m).unwrap();
        }
        let nr = NodeId::new(joiner % graph.node_count());
        prop_assume!(!sess.tree().is_on_tree(nr));
        let cands = select::enumerate_candidates(
            &graph, sess.tree(), sess.spt(), nr, SelectionMode::FullTopology, &[]);
        let mut seen = Vec::new();
        for c in &cands {
            // Unique mergers.
            prop_assert!(!seen.contains(&c.merger));
            seen.push(c.merger);
            // Approach runs from the joiner to an on-tree merger, with
            // strictly off-tree interiors.
            prop_assert_eq!(c.approach.source(), nr);
            prop_assert_eq!(c.approach.target(), c.merger);
            prop_assert!(sess.tree().is_on_tree(c.merger));
            prop_assert!(c.approach.validate(&graph).is_ok());
            for &hop in &c.approach.nodes()[1..c.approach.nodes().len() - 1] {
                prop_assert!(!sess.tree().is_on_tree(hop));
            }
            // Total delay decomposes into tree delay + approach delay.
            let tree_delay = sess.tree().delay_to(&graph, c.merger).unwrap();
            prop_assert!((c.total_delay - tree_delay - c.approach.delay(&graph)).abs() < 1e-9);
            // The SHR snapshot matches the tree.
            prop_assert_eq!(c.shr, sess.tree().shr(c.merger));
        }
        // The neighbor-query scheme never invents mergers the full scheme
        // cannot reach.
        let query = select::enumerate_candidates(
            &graph, sess.tree(), sess.spt(), nr, SelectionMode::NeighborQuery, &[]);
        for c in &query {
            prop_assert!(sess.tree().is_on_tree(c.merger));
            prop_assert!(c.approach.validate(&graph).is_ok());
        }
    }

    #[test]
    fn join_bound_certificate_is_honest(seed in 0u64..400) {
        let graph = waxman(seed.wrapping_add(700), 24);
        let (source, members) = pick(&graph, 8);
        let mut sess = SmrpSession::new(
            &graph,
            source,
            SmrpConfig { d_thresh: 0.25, auto_reshape: false, ..SmrpConfig::default() },
        ).unwrap();
        for &m in &members {
            let out = sess.join(m).unwrap();
            if out.within_bound {
                prop_assert!(out.selected_delay <= 1.25 * out.spf_delay + 1e-6);
            }
            prop_assert!((out.path.delay(&graph) - out.selected_delay).abs() < 1e-9);
            prop_assert_eq!(out.path.target(), m);
            prop_assert_eq!(out.path.source(), source);
        }
    }

    #[test]
    fn spf_and_steiner_trees_always_validate(seed in 0u64..400) {
        let graph = waxman(seed.wrapping_add(1500), 24);
        let (source, members) = pick(&graph, 8);
        let mut spf = SpfSession::new(&graph, source).unwrap();
        let mut steiner = SteinerSession::new(&graph, source).unwrap();
        for &m in &members {
            spf.join(m).unwrap();
            steiner.join(m).unwrap();
        }
        spf.tree().validate(&graph).unwrap();
        steiner.tree().validate(&graph).unwrap();
        // Steiner trees never cost more than SPF trees on the same member
        // set... is NOT a theorem (greedy), but delays are: SPF is optimal.
        for &m in &members {
            let d_spf = spf.tree().delay_to(&graph, m).unwrap();
            let d_st = steiner.tree().delay_to(&graph, m).unwrap();
            prop_assert!(d_spf <= d_st + 1e-9);
        }
    }

    #[test]
    fn recovery_attach_points_are_connected_and_paths_fresh(
        seed in 0u64..300,
        which in 0usize..16,
    ) {
        let graph = waxman(seed.wrapping_add(2500), 24);
        let (source, members) = pick(&graph, 6);
        let mut sess = SmrpSession::new(&graph, source, SmrpConfig::default()).unwrap();
        for &m in &members {
            sess.join(m).unwrap();
        }
        let tree = sess.tree();
        let links = tree.links(&graph);
        prop_assume!(!links.is_empty());
        let link = links[which % links.len()];
        let scenario = FailureScenario::link(link);
        let surviving = recovery::surviving_connected(&graph, tree, &scenario);
        for member in recovery::affected_members(&graph, tree, &scenario) {
            for kind in [DetourKind::Local, DetourKind::Global] {
                if let Ok(rec) = recovery::recover(&graph, tree, &scenario, member, kind) {
                    prop_assert!(surviving.contains(&rec.attach()));
                    prop_assert!(!surviving.contains(&rec.member()));
                    prop_assert_eq!(rec.restoration_path().source(), member);
                    prop_assert_eq!(rec.restoration_path().target(), rec.attach());
                    prop_assert!(rec.recovery_distance() >= 0.0);
                    prop_assert!(rec.new_end_to_end_delay() >= rec.recovery_distance());
                }
            }
        }
    }

    #[test]
    fn incremental_stats_match_oracle_under_churn(seed in 0u64..200, nodes in 16usize..40) {
        // Drive a session through a random join/leave/reshape churn and,
        // after every step, compare the incrementally maintained N_R/SHR
        // against a from-scratch recomputation on a clone of the tree.
        let graph = waxman(seed.wrapping_add(6000), nodes);
        let ids: Vec<NodeId> = graph.node_ids().collect();
        let source = ids[0];
        let mut sess = SmrpSession::new(&graph, source, SmrpConfig::default()).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
        for _ in 0..40 {
            let node = ids[rng.gen_range(1..ids.len())];
            // Ops may legitimately fail (joining a member, leaving a
            // non-member, unreachable node); only the bookkeeping after
            // whatever did happen matters here.
            match rng.gen_range(0u32..4) {
                0 | 1 => drop(sess.join(node)),
                2 => drop(sess.leave(node)),
                _ => drop(sess.reshape_member(node)),
            }
            let mut oracle = sess.tree().clone();
            oracle.recompute_stats();
            for u in sess.tree().source_connected_nodes() {
                prop_assert_eq!(
                    sess.tree().subtree_members(u),
                    oracle.subtree_members(u),
                    "incremental N diverged at {}", u
                );
                prop_assert_eq!(
                    sess.tree().shr(u),
                    oracle.shr(u),
                    "incremental SHR diverged at {}", u
                );
            }
            sess.tree().validate(&graph).unwrap();
        }
    }

    #[test]
    fn weighted_population_stats_match_oracle_under_churn(
        seed in 0u64..200,
        nodes in 16usize..40,
    ) {
        // Same churn as above, but memberships carry aggregated population
        // weights (up to tens of thousands of receivers behind one node):
        // weighted joins, re-weighting of live members, and leaves that
        // drop whole populations. The incrementally maintained weighted
        // N_R/SHR must match a from-scratch oracle after every step.
        let graph = waxman(seed.wrapping_add(7000), nodes);
        let ids: Vec<NodeId> = graph.node_ids().collect();
        let source = ids[0];
        let mut sess = SmrpSession::new(&graph, source, SmrpConfig::default()).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x517C_C1B7));
        for _ in 0..40 {
            let node = ids[rng.gen_range(1..ids.len())];
            match rng.gen_range(0u32..5) {
                0 | 1 => {
                    let w = rng.gen_range(1u32..20_000);
                    drop(sess.join_weighted(node, w));
                }
                2 => {
                    // Re-weight a live member in place (population churn
                    // behind one attachment point).
                    let w = rng.gen_range(1u32..20_000);
                    if sess.tree().is_member(node) {
                        let mut tree = sess.tree().clone();
                        tree.set_member_weight(node, w).unwrap();
                        // Round-trip through the session is not exposed for
                        // raw trees; verify the delta math directly.
                        let mut oracle = tree.clone();
                        oracle.recompute_stats();
                        for u in tree.source_connected_nodes() {
                            prop_assert_eq!(tree.subtree_members(u), oracle.subtree_members(u));
                            prop_assert_eq!(tree.shr(u), oracle.shr(u));
                        }
                    }
                }
                3 => drop(sess.leave(node)),
                _ => drop(sess.reshape_member(node)),
            }
            let mut oracle = sess.tree().clone();
            oracle.recompute_stats();
            for u in sess.tree().source_connected_nodes() {
                prop_assert_eq!(
                    sess.tree().subtree_members(u),
                    oracle.subtree_members(u),
                    "incremental weighted N diverged at {}", u
                );
                prop_assert_eq!(
                    sess.tree().shr(u),
                    oracle.shr(u),
                    "incremental weighted SHR diverged at {}", u
                );
            }
            sess.tree().validate(&graph).unwrap();
            prop_assert_eq!(
                sess.tree().population(),
                sess.tree().members()
                    .map(|m| u64::from(sess.tree().member_weight(m)))
                    .sum::<u64>()
            );
        }
    }

    #[test]
    fn backup_plans_are_disjoint_when_claimed(seed in 0u64..300) {
        let graph = waxman(seed.wrapping_add(4000), 24);
        let (source, members) = pick(&graph, 6);
        let mut sess = SmrpSession::new(&graph, source, SmrpConfig::default()).unwrap();
        for &m in &members {
            sess.join(m).unwrap();
        }
        for plan in smrp_core::backup::plan_backups(&graph, sess.tree()) {
            prop_assert_eq!(plan.backup.source(), plan.member);
            prop_assert_eq!(plan.backup.target(), source);
            prop_assert!(plan.backup.validate(&graph).is_ok());
            if plan.link_disjoint {
                let primary_links = plan.primary.links(&graph);
                for l in plan.backup.links(&graph) {
                    prop_assert!(!primary_links.contains(&l));
                }
            }
        }
    }
}
