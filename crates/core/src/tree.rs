//! The multicast tree shared by SMRP and the SPF baseline.
//!
//! A [`MulticastTree`] is a Steiner tree over the nodes of a
//! [`smrp_net::Graph`], rooted at the multicast source. On-tree nodes are
//! either *members* (receivers) or *relays* (forwarding-only). Every on-tree
//! node `R` carries the state the paper's Figure 3 prescribes:
//!
//! * `N_R` — the number of members in the subtree rooted at `R`
//!   (equivalently `N_L` for the upstream link `L(R, R_u)`, since everyone
//!   in the subtree receives through that link);
//! * `SHR(S,R)` — the sharing metric of Eq. 1, maintained incrementally via
//!   the recurrence of Eq. 2: `SHR(S,R) = SHR(S,R_u) + N_R`, `SHR(S,S)=0`.
//!
//! The per-downstream-interface counts `N_R^i` of the paper are simply the
//! `N` values of `R`'s children, exposed by [`MulticastTree::downstream_counts`].
//!
//! Mutation happens through a small set of operations —
//! [`MulticastTree::attach_path`], [`MulticastTree::set_member`],
//! [`MulticastTree::prune_from`], [`MulticastTree::detach_subtree`] — out of which the
//! join/leave/reshape procedures of [`crate::session`] are composed.
//!
//! # Incremental maintenance
//!
//! Aggregate state is maintained *incrementally* from the Eq. 2 recurrence
//! rather than recomputed from scratch. A mutation that changes the member
//! count of the subtree hanging below a pivot node `P` by `δ`:
//!
//! * adds `δ` to `N_R` of every node on the tree path `S → P` (each such
//!   node gains the `δ` members in its subtree);
//! * adds `i·δ` to `SHR(S,R)` of every node `R` whose tree path crosses `i`
//!   of those updated links — i.e. nodes hanging off the `S → P` path at
//!   depth `i` (Eq. 1: the path sum picks up `δ` once per shared updated
//!   link).
//!
//! [`attach_path`](MulticastTree::attach_path) combines that upward
//! propagation (with `δ` = grafted-fragment member count) with a direct
//! Eq. 2 seeding pass over the grafted suffix; pruning a relay chain needs
//! no propagation at all because prunable relays carry `N_R = 0` by
//! definition. Each mutation therefore touches only the source→pivot path
//! and the subtrees hanging off it instead of the whole connected
//! component.
//!
//! [`recompute_stats`](MulticastTree::recompute_stats) retains the
//! from-scratch evaluation and serves as the oracle: under
//! `debug_assertions` (or the `audit-stats` feature) every mutating
//! operation re-derives `N`/`SHR` from scratch afterwards and asserts the
//! incremental state matches; [`validate`](MulticastTree::validate)
//! additionally re-checks `SHR` against the Eq. 1 link-sharing definition,
//! independent of the Eq. 2 recurrence.

use serde::{Deserialize, Serialize};
use smrp_net::{Graph, LinkId, NodeId, Path};

use crate::error::SmrpError;

/// A rooted multicast (Steiner) tree with SMRP bookkeeping.
///
/// See the [module documentation](self) for the maintained state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MulticastTree {
    source: NodeId,
    /// Parent (upstream node `R_u`) of each on-tree node; `None` for the
    /// source, for off-tree nodes and for a temporarily detached fragment
    /// root.
    parent: Vec<Option<NodeId>>,
    /// Children of each node (downstream interfaces).
    children: Vec<Vec<NodeId>>,
    on_tree: Vec<bool>,
    member: Vec<bool>,
    /// `N_R`: members in the subtree rooted at each node, each weighted by
    /// its aggregated population (see [`set_member_weight`]). Valid for
    /// nodes connected to the source after `recompute_stats`.
    ///
    /// [`set_member_weight`]: Self::set_member_weight
    n: Vec<u32>,
    /// `SHR(S,R)` per Eq. 2. Valid for nodes connected to the source.
    shr: Vec<u32>,
    member_count: usize,
    /// Aggregated receiver population behind each member (1 = a plain
    /// receiver). Lazily materialized: an empty vector means every member
    /// weighs 1, which keeps unweighted trees byte-compatible.
    weight: Vec<u32>,
}

impl MulticastTree {
    /// Creates a tree containing only the source.
    ///
    /// # Errors
    ///
    /// Returns [`SmrpError::UnknownNode`] if `source` is not in `graph`.
    pub fn new(graph: &Graph, source: NodeId) -> Result<Self, SmrpError> {
        if !graph.contains_node(source) {
            return Err(SmrpError::UnknownNode(source));
        }
        let n = graph.node_count();
        let mut tree = MulticastTree {
            source,
            parent: vec![None; n],
            children: vec![Vec::new(); n],
            on_tree: vec![false; n],
            member: vec![false; n],
            n: vec![0; n],
            shr: vec![0; n],
            member_count: 0,
            weight: Vec::new(),
        };
        tree.on_tree[source.index()] = true;
        Ok(tree)
    }

    /// The multicast source (tree root).
    #[inline]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Whether `node` is on the tree (member or relay).
    #[inline]
    pub fn is_on_tree(&self, node: NodeId) -> bool {
        self.on_tree[node.index()]
    }

    /// Whether `node` is a member (receiver).
    #[inline]
    pub fn is_member(&self, node: NodeId) -> bool {
        self.member[node.index()]
    }

    /// Upstream node `R_u` of `node`, if any.
    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node.index()]
    }

    /// Children (downstream interfaces) of `node`.
    #[inline]
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[node.index()]
    }

    /// `N_R`: number of members in the subtree rooted at `node`.
    #[inline]
    pub fn subtree_members(&self, node: NodeId) -> u32 {
        self.n[node.index()]
    }

    /// `SHR(S, node)` — the sharing metric of Eq. 1/2.
    #[inline]
    pub fn shr(&self, node: NodeId) -> u32 {
        self.shr[node.index()]
    }

    /// The paper's `N_R^i`: member count behind each downstream interface.
    pub fn downstream_counts(&self, node: NodeId) -> Vec<(NodeId, u32)> {
        self.children[node.index()]
            .iter()
            .map(|&c| (c, self.n[c.index()]))
            .collect()
    }

    /// Number of members (attachment points; aggregated populations count
    /// once — see [`population`](Self::population) for receiver totals).
    #[inline]
    pub fn member_count(&self) -> usize {
        self.member_count
    }

    /// Aggregated receiver population behind `node`'s membership: 1 for a
    /// plain member, the configured weight for an aggregated attachment
    /// point, 0 for a non-member.
    #[inline]
    pub fn member_weight(&self, node: NodeId) -> u32 {
        if self.member[node.index()] {
            self.weight_of(node.index())
        } else {
            0
        }
    }

    /// Total receiver population over all members (sum of member weights).
    pub fn population(&self) -> u64 {
        self.member
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| u64::from(self.weight_of(i)))
            .sum()
    }

    /// The weight slot for a node index; an unmaterialized vector means 1.
    #[inline]
    fn weight_of(&self, i: usize) -> u32 {
        self.weight.get(i).copied().unwrap_or(1)
    }

    /// Materializes the weight vector (all-1) so a slot can be written.
    fn weight_slot(&mut self, i: usize) -> &mut u32 {
        if self.weight.is_empty() {
            self.weight = vec![1; self.member.len()];
        }
        &mut self.weight[i]
    }

    /// Iterator over members in node-id order.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.member
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| NodeId::new(i))
    }

    /// Iterator over all on-tree nodes in node-id order.
    pub fn on_tree_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.on_tree
            .iter()
            .enumerate()
            .filter(|(_, &t)| t)
            .map(|(i, _)| NodeId::new(i))
    }

    /// On-tree nodes reachable from the source through parent/child links —
    /// excludes any temporarily detached fragment.
    pub fn source_connected_nodes(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![self.source];
        while let Some(u) = stack.pop() {
            out.push(u);
            stack.extend(self.children[u.index()].iter().copied());
        }
        out
    }

    /// The on-tree path from the source to `node` (`P_T(S, R)` in the
    /// paper), or `None` if `node` is off-tree or detached.
    pub fn path_from_source(&self, node: NodeId) -> Option<Path> {
        if !self.on_tree[node.index()] {
            return None;
        }
        let mut nodes = vec![node];
        let mut cur = node;
        while cur != self.source {
            let p = self.parent[cur.index()]?;
            nodes.push(p);
            cur = p;
        }
        nodes.reverse();
        Some(Path::new(nodes))
    }

    /// End-to-end tree delay `D_{S,R}` from the source to `node`.
    ///
    /// Returns `None` for off-tree or detached nodes.
    pub fn delay_to(&self, graph: &Graph, node: NodeId) -> Option<f64> {
        self.path_from_source(node).map(|p| p.delay(graph))
    }

    /// All tree links (the upstream link of every non-root connected node).
    pub fn links(&self, graph: &Graph) -> Vec<LinkId> {
        let mut links = Vec::new();
        for u in self.source_connected_nodes() {
            if let Some(p) = self.parent[u.index()] {
                let l = graph
                    .link_between(u, p)
                    .expect("tree edges correspond to graph links");
                links.push(l);
            }
        }
        links.sort_unstable();
        links
    }

    /// Total tree cost `Cost_T`: sum of link costs over all tree links.
    pub fn cost(&self, graph: &Graph) -> f64 {
        self.links(graph)
            .into_iter()
            .map(|l| graph.link(l).cost())
            .sum()
    }

    /// Total tree delay (diagnostic; the paper reports cost and per-member
    /// delay).
    pub fn total_delay(&self, graph: &Graph) -> f64 {
        self.links(graph)
            .into_iter()
            .map(|l| graph.link(l).delay())
            .sum()
    }

    /// Average end-to-end delay over all members.
    ///
    /// Returns `0.0` for an empty membership.
    pub fn average_member_delay(&self, graph: &Graph) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for m in self.members() {
            if let Some(d) = self.delay_to(graph, m) {
                total += d;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    /// Attaches a path to the tree.
    ///
    /// `path` runs from the node being attached toward the tree:
    /// `[new_root, v_1, …, merger]`, where `merger` is on-tree and connected,
    /// every interior `v_i` is off-tree, and `new_root` is either off-tree
    /// or the root of a fragment previously detached with
    /// [`detach_subtree`](Self::detach_subtree).
    ///
    /// Updates aggregate state incrementally (see the [module
    /// documentation](self)): the grafted fragment's member count is
    /// propagated up the `S → merger` path and the grafted suffix is seeded
    /// directly from the Eq. 2 recurrence.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) if the contract above is violated; callers
    /// inside this crate construct paths that satisfy it by construction.
    pub fn attach_path(&mut self, path: &Path) {
        let nodes = path.nodes();
        let merger = *nodes.last().expect("paths are non-empty");
        debug_assert!(
            self.on_tree[merger.index()],
            "merger {merger} must be on-tree"
        );
        if nodes.len() == 1 {
            // Trivial: attaching a node that is already the merger.
            return;
        }
        let new_root = nodes[0];
        debug_assert!(
            self.parent[new_root.index()].is_none(),
            "attached root {new_root} must not already have a parent"
        );
        for w in nodes.windows(2) {
            let (child, up) = (w[0], w[1]);
            debug_assert!(
                child == new_root || !self.on_tree[child.index()],
                "interior node {child} must be off-tree"
            );
            self.parent[child.index()] = Some(up);
            self.on_tree[child.index()] = true;
            self.children[up.index()].push(child);
        }

        // Members carried in by the graft. A reattached fragment keeps
        // correct internal `N` values, but a fresh node may hold stale state
        // from an earlier on-tree stint, so recount from member flags.
        let delta: i64 = self
            .subtree_nodes(new_root)
            .iter()
            .map(|&v| i64::from(self.member_weight(v)))
            .sum();
        // Every chain node's subtree is exactly the grafted fragment.
        for &v in &nodes[..nodes.len() - 1] {
            self.n[v.index()] = delta as u32;
        }
        // Upward propagation along S → merger. The freshly grafted chain is
        // excluded from the downstream SHR sweep — it is seeded exactly
        // below.
        let chain_child = nodes[nodes.len() - 2];
        self.propagate_member_delta(merger, delta, Some(chain_child));
        // Seed the grafted suffix (chain + fragment) top-down via Eq. 2.
        let mut stack = vec![chain_child];
        while let Some(u) = stack.pop() {
            let p = self.parent[u.index()].expect("grafted nodes have parents");
            self.shr[u.index()] = self.shr[p.index()] + self.n[u.index()];
            stack.extend(self.children[u.index()].iter().copied());
        }
        self.audit_stats();
    }

    /// Propagates a change of `delta` members in the subtree hanging below
    /// `pivot` (Eq. 2 delta rule, see the [module documentation](self)):
    /// `N` gains `delta` along the whole `S → pivot` path, and `SHR` of
    /// every node hanging off that path at depth `i` gains `i·delta`.
    ///
    /// `exclude` names one child of `pivot` to skip in the downstream SHR
    /// sweep ([`attach_path`](Self::attach_path) seeds that freshly grafted
    /// child exactly instead).
    fn propagate_member_delta(&mut self, pivot: NodeId, delta: i64, exclude: Option<NodeId>) {
        if delta == 0 {
            return;
        }
        // Tree path source → pivot, source first.
        let mut path = vec![pivot];
        let mut cur = pivot;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        debug_assert_eq!(cur, self.source, "pivot {pivot} must be source-connected");
        path.reverse();

        for depth in 0..path.len() {
            let v = path[depth];
            self.n[v.index()] = (i64::from(self.n[v.index()]) + delta) as u32;
            if depth == 0 {
                continue; // SHR(S,S) is pinned at 0.
            }
            let bump = depth as i64 * delta;
            self.shr[v.index()] = (i64::from(self.shr[v.index()]) + bump) as u32;
            // Subtrees hanging off the path at this depth cross exactly
            // `depth` updated links.
            let next_on_path = path.get(depth + 1).copied();
            let offs: Vec<NodeId> = self.children[v.index()]
                .iter()
                .copied()
                .filter(|&c| Some(c) != next_on_path && !(v == pivot && Some(c) == exclude))
                .collect();
            for c in offs {
                self.bump_subtree_shr(c, bump);
            }
        }
    }

    /// Adds `bump` to `SHR` of every node in the subtree rooted at `root`.
    fn bump_subtree_shr(&mut self, root: NodeId, bump: i64) {
        let mut stack = vec![root];
        while let Some(u) = stack.pop() {
            self.shr[u.index()] = (i64::from(self.shr[u.index()]) + bump) as u32;
            stack.extend(self.children[u.index()].iter().copied());
        }
    }

    /// Asserts the incremental `N`/`SHR` state equals a from-scratch
    /// [`recompute_stats`](Self::recompute_stats) evaluation (the oracle).
    ///
    /// Compiled in under `debug_assertions` or the `audit-stats` feature;
    /// a no-op in plain release builds.
    #[cfg(any(debug_assertions, feature = "audit-stats"))]
    fn audit_stats(&mut self) {
        let n_inc = self.n.clone();
        let shr_inc = self.shr.clone();
        self.recompute_stats();
        for u in self.source_connected_nodes() {
            assert_eq!(
                n_inc[u.index()],
                self.n[u.index()],
                "incremental N_{u} diverged from the from-scratch oracle"
            );
            assert_eq!(
                shr_inc[u.index()],
                self.shr[u.index()],
                "incremental SHR({u}) diverged from the from-scratch oracle"
            );
        }
    }

    #[cfg(not(any(debug_assertions, feature = "audit-stats")))]
    #[inline]
    fn audit_stats(&mut self) {}

    /// Marks an on-tree node as a member, or clears membership.
    ///
    /// Clearing membership does *not* prune relay chains; call
    /// [`prune_from`](Self::prune_from) afterwards (the leave procedure in
    /// [`crate::session`] does).
    ///
    /// # Errors
    ///
    /// Returns [`SmrpError::NotMember`] when clearing a non-member and an
    /// error when setting membership on an off-tree node.
    pub fn set_member(&mut self, node: NodeId, is_member: bool) -> Result<(), SmrpError> {
        if is_member {
            if !self.on_tree[node.index()] {
                return Err(SmrpError::UnknownNode(node));
            }
            if !self.member[node.index()] {
                self.member[node.index()] = true;
                self.member_count += 1;
                // A fresh membership always starts at weight 1; aggregated
                // populations are declared afterwards via
                // `set_member_weight`.
                if !self.weight.is_empty() {
                    self.weight[node.index()] = 1;
                }
                self.propagate_member_delta(node, 1, None);
                self.audit_stats();
            }
        } else {
            if !self.member[node.index()] {
                return Err(SmrpError::NotMember(node));
            }
            let removed = i64::from(self.weight_of(node.index()));
            self.member[node.index()] = false;
            self.member_count -= 1;
            if !self.weight.is_empty() {
                self.weight[node.index()] = 1;
            }
            self.propagate_member_delta(node, -removed, None);
            self.audit_stats();
        }
        Ok(())
    }

    /// Declares `node`'s membership as an aggregated attachment point
    /// serving `weight` receivers (§3.3.3 at scale: a leaf-domain agent
    /// fronting thousands of users). The weight enters the Eq. 2
    /// maintenance exactly like `weight` individual members behind one
    /// node: `N` along the source path and `SHR` of off-path subtrees move
    /// by the weight delta.
    ///
    /// # Errors
    ///
    /// Returns [`SmrpError::NotMember`] if `node` is not a member and
    /// [`SmrpError::InvalidConfig`] for a zero weight (leaving is
    /// [`set_member`](Self::set_member)`(node, false)`).
    pub fn set_member_weight(&mut self, node: NodeId, weight: u32) -> Result<(), SmrpError> {
        if weight == 0 {
            return Err(SmrpError::InvalidConfig {
                name: "weight",
                reason: "aggregated populations must serve at least one receiver",
            });
        }
        if !self.member[node.index()] {
            return Err(SmrpError::NotMember(node));
        }
        let old = i64::from(self.weight_of(node.index()));
        let delta = i64::from(weight) - old;
        *self.weight_slot(node.index()) = weight;
        self.propagate_member_delta(node, delta, None);
        self.audit_stats();
        Ok(())
    }

    /// Removes useless relays starting at `node` and walking upstream.
    ///
    /// A node is useless if it is on-tree, not the source, not a member and
    /// has no children. This is the upstream walk of the paper's
    /// `Leave_Req`: state is cleared hop by hop until a router with a
    /// non-null member set underneath is reached.
    pub fn prune_from(&mut self, node: NodeId) {
        // Pruned relays carry `N_R = 0` (childless non-members), so removing
        // them changes no other node's `N` or `SHR` — no propagation needed.
        let mut cur = node;
        loop {
            let i = cur.index();
            if !self.on_tree[i]
                || cur == self.source
                || self.member[i]
                || !self.children[i].is_empty()
            {
                break;
            }
            let up = self.parent[i];
            self.on_tree[i] = false;
            self.parent[i] = None;
            self.n[i] = 0;
            self.shr[i] = 0;
            match up {
                Some(p) => {
                    self.children[p.index()].retain(|&c| c != cur);
                    cur = p;
                }
                None => break,
            }
        }
        self.audit_stats();
    }

    /// Detaches the subtree rooted at `node` from its parent, pruning any
    /// relay chain left behind, and returns the node the fragment used to
    /// hang off (the first surviving ancestor — the paper's "current merger"
    /// for reshaping comparisons).
    ///
    /// The fragment keeps its internal structure; its nodes remain marked
    /// on-tree but are no longer connected to the source. Reattach with
    /// [`attach_path`](Self::attach_path) promptly.
    ///
    /// # Errors
    ///
    /// Fails if `node` is the source, off-tree, or already detached.
    pub fn detach_subtree(&mut self, node: NodeId) -> Result<NodeId, SmrpError> {
        if node == self.source {
            return Err(SmrpError::SourceOperation(node));
        }
        if !self.on_tree[node.index()] {
            return Err(SmrpError::UnknownNode(node));
        }
        let Some(old_parent) = self.parent[node.index()] else {
            return Err(SmrpError::UnknownNode(node));
        };
        let removed = i64::from(self.n[node.index()]);
        self.parent[node.index()] = None;
        self.children[old_parent.index()].retain(|&c| c != node);
        // The fragment keeps its internal `N` values (its subtrees did not
        // change); upstream, the surviving path loses `removed` members.
        self.propagate_member_delta(old_parent, -removed, None);

        // Find where the surviving chain ends before pruning mutates it.
        let mut keeper = old_parent;
        while keeper != self.source
            && !self.member[keeper.index()]
            && self.children[keeper.index()].is_empty()
        {
            keeper = self.parent[keeper.index()].expect("connected chain reaches the source");
        }
        self.prune_from(old_parent);
        Ok(keeper)
    }

    /// Nodes of the subtree rooted at `node` (including `node`), in DFS
    /// order.
    pub fn subtree_nodes(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(u) = stack.pop() {
            out.push(u);
            stack.extend(self.children[u.index()].iter().copied());
        }
        out
    }

    /// Recomputes `N_R` and `SHR(S,R)` for the source-connected component
    /// via the recurrence of Eq. 2, from scratch.
    ///
    /// The mutating operations maintain this state incrementally; this
    /// from-scratch evaluation is the *oracle* they are audited against
    /// (under `debug_assertions` or the `audit-stats` feature) and remains
    /// public so advanced callers composing raw mutations can refresh
    /// state, or benchmarks can emulate the non-incremental scheme.
    pub fn recompute_stats(&mut self) {
        // Post-order accumulation of N, then pre-order SHR.
        let order = self.source_connected_nodes(); // parents before children
        for &u in order.iter().rev() {
            let mut count = self.member_weight(u);
            for &c in &self.children[u.index()] {
                count += self.n[c.index()];
            }
            self.n[u.index()] = count;
        }
        for &u in &order {
            if u == self.source {
                self.shr[u.index()] = 0;
            } else {
                let p = self.parent[u.index()].expect("connected non-root has a parent");
                self.shr[u.index()] = self.shr[p.index()] + self.n[u.index()];
            }
        }
    }

    /// Verifies every structural and bookkeeping invariant against `graph`.
    ///
    /// Checked invariants:
    /// 1. parent/child cross-consistency and acyclicity;
    /// 2. every tree edge is a real graph link;
    /// 3. every member is on-tree and connected to the source;
    /// 4. no detached fragments exist;
    /// 5. leaf relays do not exist (every leaf is a member), except the
    ///    bare source;
    /// 6. `N_R` equals the recount of subtree members;
    /// 7. `SHR` matches a from-scratch evaluation of Eq. 1 (link-sharing
    ///    definition), independently of the Eq. 2 recurrence used for
    ///    maintenance.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self, graph: &Graph) -> Result<(), String> {
        // (1) parent/child consistency.
        for u in self.on_tree_nodes() {
            if let Some(p) = self.parent[u.index()] {
                if !self.on_tree[p.index()] {
                    return Err(format!("parent {p} of {u} is off-tree"));
                }
                if !self.children[p.index()].contains(&u) {
                    return Err(format!("{u} missing from children of {p}"));
                }
                // (2) edges are graph links.
                if graph.link_between(u, p).is_none() {
                    return Err(format!("tree edge {u}-{p} is not a graph link"));
                }
            }
        }
        for u in self.on_tree_nodes() {
            for &c in &self.children[u.index()] {
                if self.parent[c.index()] != Some(u) {
                    return Err(format!("child {c} of {u} has wrong parent"));
                }
            }
        }
        // (3)+(4): connectivity and no fragments.
        let connected = self.source_connected_nodes();
        let on_tree_count = self.on_tree_nodes().count();
        if connected.len() != on_tree_count {
            return Err(format!(
                "{} on-tree nodes but only {} connected to the source",
                on_tree_count,
                connected.len()
            ));
        }
        for m in self.members() {
            if self.path_from_source(m).is_none() {
                return Err(format!("member {m} has no path from the source"));
            }
        }
        // (5) no relay leaves.
        for u in self.on_tree_nodes() {
            if u != self.source && self.children[u.index()].is_empty() && !self.member[u.index()] {
                return Err(format!("leaf {u} is a relay, tree was not pruned"));
            }
        }
        // (6) N recount (weighted: an aggregated population counts its
        // full receiver population, per Eq. 2 with weighted deltas).
        for &u in &connected {
            let mut recount = 0u32;
            for v in self.subtree_nodes(u) {
                recount += self.member_weight(v);
            }
            if recount != self.n[u.index()] {
                return Err(format!(
                    "N_{u} is {} but recount gives {recount}",
                    self.n[u.index()]
                ));
            }
        }
        // (7) SHR from the Eq. 1 definition: per-link member loads.
        let mut link_load: std::collections::HashMap<LinkId, u32> =
            std::collections::HashMap::new();
        for m in self.members() {
            let p = self.path_from_source(m).expect("validated above");
            for l in p.links(graph) {
                // Each of the `weight` receivers behind `m` loads every
                // link of `m`'s source path once (Eq. 1, weighted).
                *link_load.entry(l).or_insert(0) += self.member_weight(m);
            }
        }
        for &u in &connected {
            let Some(p) = self.path_from_source(u) else {
                continue;
            };
            let expected: u32 = p
                .links(graph)
                .iter()
                .map(|l| link_load.get(l).copied().unwrap_or(0))
                .sum();
            if expected != self.shr[u.index()] {
                return Err(format!(
                    "SHR({u}) is {} but Eq. 1 gives {expected}",
                    self.shr[u.index()]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 1(a) of the paper: tree S -> A -> {C, D}, members C and D.
    fn figure1_tree() -> (Graph, MulticastTree, [NodeId; 5]) {
        let mut g = Graph::with_nodes(5);
        let ids: Vec<_> = g.node_ids().collect();
        let [s, a, b, c, d] = [ids[0], ids[1], ids[2], ids[3], ids[4]];
        g.add_link(s, a, 1.0).unwrap();
        g.add_link(a, c, 1.0).unwrap();
        g.add_link(a, d, 1.0).unwrap();
        g.add_link(c, d, 2.0).unwrap();
        g.add_link(d, b, 1.0).unwrap();
        g.add_link(b, s, 2.0).unwrap();

        let mut t = MulticastTree::new(&g, s).unwrap();
        t.attach_path(&Path::new(vec![c, a, s]));
        t.set_member(c, true).unwrap();
        t.attach_path(&Path::new(vec![d, a]));
        t.set_member(d, true).unwrap();
        (g, t, [s, a, b, c, d])
    }

    #[test]
    fn figure1_shr_values_match_paper() {
        let (g, t, [s, a, _, c, d]) = figure1_tree();
        // Paper §3.1: SHR(S,C) = N_{L(S,A)} + N_{L(A,C)} = 2 + 1 = 3.
        assert_eq!(t.shr(c), 3);
        assert_eq!(t.shr(d), 3);
        assert_eq!(t.shr(a), 2);
        assert_eq!(t.shr(s), 0);
        assert_eq!(t.subtree_members(a), 2);
        t.validate(&g).unwrap();
    }

    #[test]
    fn membership_and_counts() {
        let (_, t, [s, a, b, c, d]) = figure1_tree();
        assert_eq!(t.member_count(), 2);
        assert!(t.is_member(c) && t.is_member(d));
        assert!(t.is_on_tree(a) && !t.is_member(a));
        assert!(!t.is_on_tree(b));
        assert_eq!(t.members().collect::<Vec<_>>(), vec![c, d]);
        assert_eq!(t.source(), s);
    }

    #[test]
    fn paths_and_delays() {
        let (g, t, [s, a, _, c, d]) = figure1_tree();
        let p = t.path_from_source(d).unwrap();
        assert_eq!(p.nodes(), &[s, a, d]);
        assert_eq!(t.delay_to(&g, d), Some(2.0));
        assert_eq!(t.delay_to(&g, c), Some(2.0));
        assert_eq!(t.average_member_delay(&g), 2.0);
        assert_eq!(t.cost(&g), 3.0); // links S-A, A-C, A-D.
    }

    #[test]
    fn downstream_counts_match_children() {
        let (_, t, [_, a, _, c, d]) = figure1_tree();
        let mut counts = t.downstream_counts(a);
        counts.sort();
        assert_eq!(counts, vec![(c, 1), (d, 1)]);
    }

    #[test]
    fn leave_with_prune_removes_relay_chain() {
        let (g, mut t, [s, a, _, c, d]) = figure1_tree();
        t.set_member(c, false).unwrap();
        t.prune_from(c);
        assert!(!t.is_on_tree(c));
        assert!(t.is_on_tree(a)); // still relays to D.
        t.validate(&g).unwrap();

        t.set_member(d, false).unwrap();
        t.prune_from(d);
        assert!(!t.is_on_tree(d));
        assert!(!t.is_on_tree(a)); // relay chain fully pruned.
        assert!(t.is_on_tree(s));
        t.validate(&g).unwrap();
        assert_eq!(t.member_count(), 0);
    }

    #[test]
    fn member_relay_is_kept_when_downstream_leaves() {
        let (g, mut t, [_, a, _, c, d]) = figure1_tree();
        // Make A a member too; pruning C must keep A.
        t.set_member(a, true).unwrap();
        t.set_member(c, false).unwrap();
        t.prune_from(c);
        assert!(t.is_on_tree(a) && t.is_member(a));
        assert!(t.is_on_tree(d));
        t.validate(&g).unwrap();
    }

    #[test]
    fn set_member_errors() {
        let (_, mut t, [s, _, b, c, _]) = figure1_tree();
        assert!(matches!(
            t.set_member(b, true),
            Err(SmrpError::UnknownNode(_))
        ));
        assert!(matches!(
            t.set_member(s, false),
            Err(SmrpError::NotMember(_))
        ));
        t.set_member(c, false).unwrap();
        assert!(matches!(
            t.set_member(c, false),
            Err(SmrpError::NotMember(_))
        ));
    }

    #[test]
    fn double_join_is_idempotent_on_counts() {
        let (_, mut t, [_, _, _, c, _]) = figure1_tree();
        t.set_member(c, true).unwrap();
        assert_eq!(t.member_count(), 2);
    }

    #[test]
    fn detach_subtree_returns_keeper_and_prunes() {
        let (g, mut t, [s, a, _, c, d]) = figure1_tree();
        // Detach C: keeper should be A (still has D beneath).
        let keeper = t.detach_subtree(c).unwrap();
        assert_eq!(keeper, a);
        assert!(t.is_on_tree(c)); // fragment root stays marked.
        assert!(t.parent(c).is_none());
        // Reattach C directly under S via B? No link C-S; reattach via A.
        t.attach_path(&Path::new(vec![c, a]));
        t.validate(&g).unwrap();
        assert_eq!(t.shr(c), 3);

        // Detach D when it is A's only remaining load bearer:
        t.set_member(c, false).unwrap();
        t.prune_from(c);
        let keeper = t.detach_subtree(d).unwrap();
        assert_eq!(keeper, s); // relay A pruned, chain ends at the source.
        assert!(!t.is_on_tree(a));
        let _ = keeper;
    }

    #[test]
    fn detach_errors() {
        let (_, mut t, [s, _, b, c, _]) = figure1_tree();
        assert!(matches!(
            t.detach_subtree(s),
            Err(SmrpError::SourceOperation(_))
        ));
        assert!(matches!(
            t.detach_subtree(b),
            Err(SmrpError::UnknownNode(_))
        ));
        t.detach_subtree(c).unwrap();
        assert!(matches!(
            t.detach_subtree(c),
            Err(SmrpError::UnknownNode(_))
        ));
    }

    #[test]
    fn subtree_nodes_lists_descendants() {
        let (_, t, [s, a, _, c, d]) = figure1_tree();
        let mut sub = t.subtree_nodes(a);
        sub.sort();
        assert_eq!(sub, vec![a, c, d]);
        assert_eq!(t.subtree_nodes(c), vec![c]);
        let all = t.subtree_nodes(s);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn validate_catches_leaf_relay() {
        let (g, mut t, [_, _, _, c, _]) = figure1_tree();
        // Clear membership without pruning: C becomes a relay leaf.
        t.set_member(c, false).unwrap();
        let err = t.validate(&g).unwrap_err();
        assert!(err.contains("relay"), "unexpected error: {err}");
    }

    #[test]
    fn links_are_tree_edges() {
        let (g, t, [s, a, _, c, d]) = figure1_tree();
        let links = t.links(&g);
        assert_eq!(links.len(), 3);
        let expected: Vec<LinkId> = [
            g.link_between(s, a).unwrap(),
            g.link_between(a, c).unwrap(),
            g.link_between(a, d).unwrap(),
        ]
        .into_iter()
        .collect();
        let mut expected = expected;
        expected.sort_unstable();
        assert_eq!(links, expected);
        assert_eq!(t.total_delay(&g), 3.0);
    }

    #[test]
    fn empty_tree_metrics_are_zero() {
        let g = Graph::with_nodes(3);
        let s = NodeId::new(0);
        let t = MulticastTree::new(&g, s).unwrap();
        assert_eq!(t.cost(&g), 0.0);
        assert_eq!(t.average_member_delay(&g), 0.0);
        assert_eq!(t.member_count(), 0);
        assert_eq!(t.shr(s), 0);
        t.validate(&g).unwrap();
    }

    #[test]
    fn unknown_source_is_rejected() {
        let g = Graph::with_nodes(2);
        assert!(matches!(
            MulticastTree::new(&g, NodeId::new(7)),
            Err(SmrpError::UnknownNode(_))
        ));
    }

    #[test]
    fn weighted_members_scale_n_and_shr() {
        let (g, mut t, [s, a, _, c, d]) = figure1_tree();
        // C fronts 1000 receivers: N along S→C gains 999, D's SHR gains
        // one updated link's worth (the shared S–A link).
        t.set_member_weight(c, 1000).unwrap();
        assert_eq!(t.member_weight(c), 1000);
        assert_eq!(t.member_weight(d), 1);
        assert_eq!(t.population(), 1001);
        assert_eq!(t.member_count(), 2);
        assert_eq!(t.subtree_members(a), 1001);
        assert_eq!(t.subtree_members(c), 1000);
        // SHR(S,C) = N_{L(S,A)} + N_{L(A,C)} = 1001 + 1000.
        assert_eq!(t.shr(c), 2001);
        // SHR(S,D) = 1001 + 1.
        assert_eq!(t.shr(d), 1002);
        assert_eq!(t.shr(s), 0);
        t.validate(&g).unwrap();

        // Shrinking the population propagates the negative delta.
        t.set_member_weight(c, 10).unwrap();
        assert_eq!(t.subtree_members(a), 11);
        assert_eq!(t.shr(d), 12);
        t.validate(&g).unwrap();
    }

    #[test]
    fn leaving_drops_the_whole_population_and_rejoin_resets_weight() {
        let (g, mut t, [_, a, _, c, d]) = figure1_tree();
        t.set_member_weight(d, 500).unwrap();
        assert_eq!(t.subtree_members(a), 501);
        t.set_member(d, false).unwrap();
        assert_eq!(t.subtree_members(a), 1);
        assert_eq!(t.population(), 1);
        // Rejoining starts back at weight 1, not the stale 500.
        t.set_member(d, true).unwrap();
        assert_eq!(t.member_weight(d), 1);
        assert_eq!(t.subtree_members(a), 2);
        t.validate(&g).unwrap();
        let _ = c;
    }

    #[test]
    fn weighted_fragment_detach_and_reattach_carry_population() {
        let (g, mut t, [_, a, _, c, _]) = figure1_tree();
        t.set_member_weight(c, 77).unwrap();
        let keeper = t.detach_subtree(c).unwrap();
        assert_eq!(keeper, a);
        assert_eq!(t.subtree_members(a), 1); // only D remains upstream.
        t.attach_path(&Path::new(vec![c, a]));
        assert_eq!(t.subtree_members(a), 78);
        assert_eq!(t.member_weight(c), 77);
        t.validate(&g).unwrap();
    }

    #[test]
    fn weight_errors() {
        let (_, mut t, [_, a, _, c, _]) = figure1_tree();
        assert!(matches!(
            t.set_member_weight(a, 5),
            Err(SmrpError::NotMember(_))
        ));
        assert!(matches!(
            t.set_member_weight(c, 0),
            Err(SmrpError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn shr_recurrence_matches_definition_on_deeper_tree() {
        // Chain S - x - y - z with members at x, y, z; SHR should be
        // 3, 3+2, 3+2+1.
        let mut g = Graph::with_nodes(4);
        let ids: Vec<_> = g.node_ids().collect();
        g.add_link(ids[0], ids[1], 1.0).unwrap();
        g.add_link(ids[1], ids[2], 1.0).unwrap();
        g.add_link(ids[2], ids[3], 1.0).unwrap();
        let mut t = MulticastTree::new(&g, ids[0]).unwrap();
        t.attach_path(&Path::new(vec![ids[3], ids[2], ids[1], ids[0]]));
        for &m in &ids[1..] {
            t.set_member(m, true).unwrap();
        }
        assert_eq!(t.shr(ids[1]), 3);
        assert_eq!(t.shr(ids[2]), 5);
        assert_eq!(t.shr(ids[3]), 6);
        t.validate(&g).unwrap();
    }
}
