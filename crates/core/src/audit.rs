//! Tree-quality audit: one-call diagnostics over a multicast tree.
//!
//! Reshaping decisions and `D_thresh` tuning need a quick answer to "how
//! healthy is this tree right now?": how much sharing remains, how far
//! members sit from their unicast optimum, and whether any member has
//! drifted past the delay bound (possible when a reshaped ancestor moved a
//! whole subtree, §3.2.3). [`audit`] computes all of it in one pass.

use smrp_net::dijkstra::ShortestPathTree;
use smrp_net::{Graph, NodeId};

use crate::tree::MulticastTree;

/// Snapshot of a tree's quality metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeAudit {
    /// Members (receivers).
    pub member_count: usize,
    /// Forwarding-only on-tree nodes.
    pub relay_count: usize,
    /// Tree links in use.
    pub link_count: usize,
    /// Mean `SHR(S, m)` over members — the protocol's sharing pressure.
    pub mean_member_shr: f64,
    /// Largest `SHR` among members.
    pub max_member_shr: u32,
    /// Mean delay stretch over members: tree delay ÷ unicast shortest
    /// distance (1.0 = SPF-optimal).
    pub mean_delay_stretch: f64,
    /// Members whose stretch exceeds `1 + d_thresh` (drift past the bound),
    /// with their stretch.
    pub bound_violations: Vec<(NodeId, f64)>,
    /// Longest member path in hops.
    pub max_depth: usize,
}

impl TreeAudit {
    /// Whether every member honors the delay bound.
    pub fn within_bound(&self) -> bool {
        self.bound_violations.is_empty()
    }
}

impl std::fmt::Display for TreeAudit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} members, {} relays, {} links; mean SHR {:.1} (max {}), mean stretch \
             {:.3}, {} bound violation(s), depth {}",
            self.member_count,
            self.relay_count,
            self.link_count,
            self.mean_member_shr,
            self.max_member_shr,
            self.mean_delay_stretch,
            self.bound_violations.len(),
            self.max_depth
        )
    }
}

/// Audits `tree` against the delay bound `1 + d_thresh`.
///
/// # Example
///
/// ```
/// use smrp_core::{audit, paper};
///
/// let (graph, tree, _) = paper::figure1();
/// let report = audit::audit(&graph, &tree, 0.3);
/// assert_eq!(report.member_count, 2);
/// assert!(report.within_bound());
/// assert_eq!(report.mean_delay_stretch, 1.0); // the SPF tree of Fig. 1(a).
/// ```
pub fn audit(graph: &Graph, tree: &MulticastTree, d_thresh: f64) -> TreeAudit {
    let spt = ShortestPathTree::compute(graph, tree.source());
    let mut member_count = 0;
    let mut shr_total = 0u64;
    let mut max_shr = 0u32;
    let mut stretch_total = 0.0;
    let mut violations = Vec::new();
    let mut max_depth = 0usize;

    for m in tree.members() {
        member_count += 1;
        let shr = tree.shr(m);
        shr_total += u64::from(shr);
        max_shr = max_shr.max(shr);
        let Some(path) = tree.path_from_source(m) else {
            continue;
        };
        max_depth = max_depth.max(path.hop_count());
        let tree_delay = path.delay(graph);
        let spf = spt.distance(m).unwrap_or(f64::INFINITY);
        let stretch = if spf > 0.0 { tree_delay / spf } else { 1.0 };
        stretch_total += stretch;
        if stretch > 1.0 + d_thresh + 1e-9 {
            violations.push((m, stretch));
        }
    }

    let on_tree = tree.on_tree_nodes().count();
    TreeAudit {
        member_count,
        relay_count: on_tree - member_count - 1, // minus the source.
        link_count: tree.links(graph).len(),
        mean_member_shr: if member_count == 0 {
            0.0
        } else {
            shr_total as f64 / member_count as f64
        },
        max_member_shr: max_shr,
        mean_delay_stretch: if member_count == 0 {
            0.0
        } else {
            stretch_total / member_count as f64
        },
        bound_violations: violations,
        max_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{paper, SmrpConfig, SmrpSession, SpfSession};
    use smrp_net::waxman::WaxmanConfig;

    #[test]
    fn figure1_audit_values() {
        let (g, tree, _) = paper::figure1();
        let a = audit(&g, &tree, 0.3);
        assert_eq!(a.member_count, 2);
        assert_eq!(a.relay_count, 1); // A.
        assert_eq!(a.link_count, 3);
        assert_eq!(a.mean_member_shr, 3.0); // SHR(C) = SHR(D) = 3.
        assert_eq!(a.max_member_shr, 3);
        assert_eq!(a.mean_delay_stretch, 1.0);
        assert!(a.within_bound());
        assert_eq!(a.max_depth, 2);
    }

    #[test]
    fn spf_trees_have_unit_stretch() {
        let g = WaxmanConfig::new(40)
            .alpha(0.3)
            .seed(9)
            .generate()
            .unwrap()
            .into_graph();
        let ids: Vec<_> = g.node_ids().collect();
        let mut sess = SpfSession::new(&g, ids[0]).unwrap();
        for &m in ids.iter().skip(2).step_by(5).take(6) {
            sess.join(m).unwrap();
        }
        let a = audit(&g, sess.tree(), 0.0);
        assert!((a.mean_delay_stretch - 1.0).abs() < 1e-9);
        assert!(a.within_bound());
    }

    #[test]
    fn smrp_trees_trade_stretch_for_sharing() {
        let g = WaxmanConfig::new(60)
            .alpha(0.25)
            .seed(4)
            .generate()
            .unwrap()
            .into_graph();
        let ids: Vec<_> = g.node_ids().collect();
        let mut smrp = SmrpSession::new(&g, ids[0], SmrpConfig::default()).unwrap();
        let mut spf = SpfSession::new(&g, ids[0]).unwrap();
        for &m in ids.iter().skip(1).step_by(4).take(10) {
            smrp.join(m).unwrap();
            spf.join(m).unwrap();
        }
        let a_smrp = audit(&g, smrp.tree(), 0.3);
        let a_spf = audit(&g, spf.tree(), 0.3);
        // SMRP pays stretch to reduce sharing.
        assert!(a_smrp.mean_delay_stretch >= a_spf.mean_delay_stretch - 1e-9);
        assert!(a_smrp.mean_member_shr <= a_spf.mean_member_shr + 1e-9);
        // Stretch stays within the bound up to reshaped-subtree drift.
        assert!(a_smrp.mean_delay_stretch <= 1.3 + 0.1);
    }

    #[test]
    fn empty_tree_audit_is_neutral() {
        let g = smrp_net::Graph::with_nodes(3);
        let tree = crate::MulticastTree::new(&g, smrp_net::NodeId::new(0)).unwrap();
        let a = audit(&g, &tree, 0.3);
        assert_eq!(a.member_count, 0);
        assert_eq!(a.relay_count, 0);
        assert_eq!(a.mean_delay_stretch, 0.0);
        assert!(a.within_bound());
    }

    #[test]
    fn display_is_informative() {
        let (g, tree, _) = paper::figure1();
        let text = audit(&g, &tree, 0.3).to_string();
        assert!(text.contains("2 members"));
        assert!(text.contains("mean SHR"));
    }
}
