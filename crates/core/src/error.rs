//! Error type for multicast session operations.

use std::error::Error;
use std::fmt;

use smrp_net::NodeId;

/// Errors produced by multicast tree construction and recovery.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SmrpError {
    /// The node id does not exist in the underlying graph.
    UnknownNode(NodeId),
    /// Attempted to join a node that is already a member.
    AlreadyMember(NodeId),
    /// Attempted a member-only operation on a non-member.
    NotMember(NodeId),
    /// The multicast source cannot join or leave its own session.
    SourceOperation(NodeId),
    /// No path satisfying the selection criterion exists (node disconnected
    /// from the tree, or every candidate violates the delay bound with no
    /// fallback).
    NoFeasiblePath(NodeId),
    /// A configuration parameter was out of range.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Constraint that was violated.
        reason: &'static str,
    },
}

impl fmt::Display for SmrpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmrpError::UnknownNode(n) => write!(f, "unknown node {n}"),
            SmrpError::AlreadyMember(n) => write!(f, "node {n} is already a member"),
            SmrpError::NotMember(n) => write!(f, "node {n} is not a member"),
            SmrpError::SourceOperation(n) => {
                write!(f, "the source {n} cannot join or leave its own session")
            }
            SmrpError::NoFeasiblePath(n) => {
                write!(f, "no feasible multicast path exists for node {n}")
            }
            SmrpError::InvalidConfig { name, reason } => {
                write!(f, "invalid configuration `{name}`: {reason}")
            }
        }
    }
}

impl Error for SmrpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_node() {
        assert!(SmrpError::AlreadyMember(NodeId::new(3))
            .to_string()
            .contains("n3"));
        assert!(SmrpError::NoFeasiblePath(NodeId::new(8))
            .to_string()
            .contains("n8"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SmrpError>();
    }
}
