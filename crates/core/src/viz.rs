//! Graphviz (DOT) export for multicast trees.
//!
//! Renders the topology with the multicast tree overlaid: tree links are
//! drawn bold, the source as a double circle, members filled, relays
//! hollow, and (optionally) a failed component in red with the restoration
//! path dashed. Handy for debugging path selection and for documentation
//! figures — `dot -Tsvg` turns the output into exactly the kind of picture
//! the paper's Figures 1–5 show.

use std::fmt::Write as _;

use smrp_net::{FailureScenario, Graph, Path};

use crate::tree::MulticastTree;

/// Builder for a DOT rendering of a tree over its topology.
#[derive(Debug, Clone)]
pub struct DotExport<'a> {
    graph: &'a Graph,
    tree: &'a MulticastTree,
    failures: Option<&'a FailureScenario>,
    restoration: Option<&'a Path>,
    show_weights: bool,
}

impl<'a> DotExport<'a> {
    /// Starts an export of `tree` over `graph`.
    pub fn new(graph: &'a Graph, tree: &'a MulticastTree) -> Self {
        DotExport {
            graph,
            tree,
            failures: None,
            restoration: None,
            show_weights: true,
        }
    }

    /// Highlights failed components in red.
    pub fn failures(mut self, scenario: &'a FailureScenario) -> Self {
        self.failures = Some(scenario);
        self
    }

    /// Draws a restoration path as a dashed overlay.
    pub fn restoration(mut self, path: &'a Path) -> Self {
        self.restoration = Some(path);
        self
    }

    /// Toggles delay labels on links.
    pub fn show_weights(mut self, show: bool) -> Self {
        self.show_weights = show;
        self
    }

    /// Renders the DOT document.
    pub fn render(&self) -> String {
        let mut out = String::from("graph smrp {\n  layout=neato;\n  overlap=false;\n");
        for n in self.graph.node_ids() {
            let mut attrs: Vec<String> = Vec::new();
            if let Some(p) = self.graph.position(n) {
                attrs.push(format!("pos=\"{:.3},{:.3}\"", p.x * 10.0, p.y * 10.0));
            }
            if n == self.tree.source() {
                attrs.push("shape=doublecircle".into());
                attrs.push("style=filled".into());
                attrs.push("fillcolor=gold".into());
            } else if self.tree.is_member(n) {
                attrs.push("shape=circle".into());
                attrs.push("style=filled".into());
                attrs.push("fillcolor=lightblue".into());
            } else if self.tree.is_on_tree(n) {
                attrs.push("shape=circle".into());
            } else {
                attrs.push("shape=point".into());
            }
            if self.failures.is_some_and(|f| !f.node_usable(n)) {
                attrs.push("color=red".into());
            }
            let _ = writeln!(out, "  \"{n}\" [{}];", attrs.join(", "));
        }

        let tree_links = self.tree.links(self.graph);
        let restoration_links = self
            .restoration
            .map(|p| p.links(self.graph))
            .unwrap_or_default();
        for l in self.graph.link_ids() {
            let link = self.graph.link(l);
            let mut attrs: Vec<String> = Vec::new();
            if self.show_weights {
                attrs.push(format!("label=\"{:.1}\"", link.delay()));
                attrs.push("fontsize=8".into());
            }
            let failed = self.failures.is_some_and(|f| !f.link_usable(self.graph, l));
            if failed {
                attrs.push("color=red".into());
                attrs.push("penwidth=2".into());
                attrs.push("style=dotted".into());
            } else if restoration_links.contains(&l) {
                attrs.push("color=forestgreen".into());
                attrs.push("penwidth=2.5".into());
                attrs.push("style=dashed".into());
            } else if tree_links.contains(&l) {
                attrs.push("penwidth=2.5".into());
            } else {
                attrs.push("color=gray70".into());
            }
            let _ = writeln!(
                out,
                "  \"{}\" -- \"{}\" [{}];",
                link.a(),
                link.b(),
                attrs.join(", ")
            );
        }
        out.push_str("}\n");
        out
    }
}

impl std::fmt::Display for DotExport<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use crate::recovery::{self, DetourKind};

    #[test]
    fn renders_figure1_with_roles() {
        let (g, tree, n) = paper::figure1();
        let dot = DotExport::new(&g, &tree).render();
        assert!(dot.starts_with("graph smrp {"));
        assert!(dot.ends_with("}\n"));
        // Source styled gold, members lightblue, off-tree B is a point.
        assert!(dot.contains("doublecircle"));
        assert_eq!(dot.matches("lightblue").count(), 2);
        assert!(dot.contains(&format!("\"{}\" [shape=point];", n.b)));
        // Tree links are bold; there are exactly 3 of them.
        assert_eq!(dot.matches("penwidth=2.5").count(), 3);
    }

    #[test]
    fn failure_and_restoration_overlays() {
        let (g, tree, n) = paper::figure1();
        let l_ad = g.link_between(n.a, n.d).unwrap();
        let fail = FailureScenario::link(l_ad);
        let rec = recovery::recover(&g, &tree, &fail, n.d, DetourKind::Local).unwrap();
        let dot = DotExport::new(&g, &tree)
            .failures(&fail)
            .restoration(rec.restoration_path())
            .render();
        assert!(dot.contains("color=red"));
        assert!(dot.contains("forestgreen"));
    }

    #[test]
    fn weights_can_be_hidden() {
        let (g, tree, _) = paper::figure1();
        let with = DotExport::new(&g, &tree).render();
        let without = DotExport::new(&g, &tree).show_weights(false).render();
        assert!(with.contains("label="));
        assert!(!without.contains("label="));
        assert!(without.len() < with.len());
    }

    #[test]
    fn display_matches_render() {
        let (g, tree, _) = paper::figure1();
        let e = DotExport::new(&g, &tree);
        assert_eq!(e.to_string(), e.render());
    }
}
