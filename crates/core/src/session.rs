//! The SMRP session: incremental membership and tree reshaping (§3.2).
//!
//! [`SmrpSession`] drives a [`MulticastTree`] through explicit member joins
//! and departures using the path selection of [`crate::select`], and
//! implements the tree-reshaping procedure of §3.2.3:
//!
//! * **Condition I** — every member records the `SHR` of its path when it
//!   (re)joins; when later joins push the current value more than
//!   `reshape_threshold` above that baseline, the member re-runs path
//!   selection.
//! * **Condition II** — a periodic sweep ([`SmrpSession::reshape_sweep`])
//!   re-evaluates every member regardless of baselines, catching
//!   improvements enabled by departures.
//!
//! During re-evaluation the member's own branch is removed from the
//! candidate tree so `SHR` values are *adjusted* exactly as §3.2.3 requires
//! ("since the current path still exists when the new path is located, the
//! value of SHR may be inaccurate and should be adjusted before the path
//! comparison is made").

use smrp_net::dijkstra::{Constraints, ShortestPathTree};
use smrp_net::{Graph, NodeId, Path};

use crate::error::SmrpError;
use crate::select::{self, SelectionMode};
use crate::tree::MulticastTree;

/// Tunable parameters of the protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmrpConfig {
    /// `D_thresh`: relative slack over the unicast shortest-path delay a
    /// member's multicast path may consume (paper default 0.3).
    pub d_thresh: f64,
    /// Condition I trigger: reshape a member once its `SHR` exceeds its
    /// baseline by more than this.
    pub reshape_threshold: u32,
    /// Whether joins automatically trigger Condition I reshaping.
    pub auto_reshape: bool,
    /// Candidate discovery mode (full topology vs §3.3.1 neighbor query).
    pub selection: SelectionMode,
}

impl Default for SmrpConfig {
    /// Paper defaults: `D_thresh = 0.3` (the headline configuration of
    /// §4.3.2), a Condition I threshold of 1 shared link — so the `+2`
    /// growth of `SHR(S,D)` in the Figure 5 example triggers reshaping —
    /// and automatic reshaping on.
    fn default() -> Self {
        SmrpConfig {
            d_thresh: 0.3,
            reshape_threshold: 1,
            auto_reshape: true,
            selection: SelectionMode::FullTopology,
        }
    }
}

impl SmrpConfig {
    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// [`SmrpError::InvalidConfig`] if `d_thresh` is negative or not
    /// finite.
    pub fn validate(&self) -> Result<(), SmrpError> {
        if !self.d_thresh.is_finite() || self.d_thresh < 0.0 {
            return Err(SmrpError::InvalidConfig {
                name: "d_thresh",
                reason: "must be finite and non-negative",
            });
        }
        Ok(())
    }
}

/// Outcome of a successful join.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinOutcome {
    /// The node that joined.
    pub member: NodeId,
    /// The on-tree merger node selected by the criterion.
    pub merger: NodeId,
    /// The member's full multicast path `S → member`.
    pub path: Path,
    /// Unicast shortest-path delay used for the bound.
    pub spf_delay: f64,
    /// Delay of the selected multicast path.
    pub selected_delay: f64,
    /// Whether the selected path satisfied the `D_thresh` bound.
    pub within_bound: bool,
    /// Members reshaped by the automatic Condition I pass, if enabled.
    pub reshaped: Vec<NodeId>,
}

/// Outcome of a reshape attempt for one member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReshapeOutcome {
    /// The member switched to a better path.
    Switched {
        /// Merger node of the abandoned path (in the reduced tree).
        old_merger: NodeId,
        /// Merger node of the new path.
        new_merger: NodeId,
    },
    /// The current path is still the best available; nothing changed.
    Kept,
}

/// An SMRP multicast session over a fixed topology.
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct SmrpSession<'g> {
    graph: &'g Graph,
    tree: MulticastTree,
    config: SmrpConfig,
    /// Condition I baseline per member (`SHR` at last join/reshape).
    shr_baseline: Vec<u32>,
    /// Cached unicast shortest-path tree from the source (the routers'
    /// steady-state routing table). Computed once at construction and
    /// reused by every join/reshape for `D_SPF` lookups and neighbor-query
    /// relay routes; refreshed explicitly via [`SmrpSession::refresh_spt`]
    /// when the usable topology changes (e.g. a failure scenario strikes).
    spt: ShortestPathTree,
}

impl<'g> SmrpSession<'g> {
    /// Creates an empty session rooted at `source`.
    ///
    /// # Errors
    ///
    /// Fails on an unknown source node or invalid configuration.
    pub fn new(graph: &'g Graph, source: NodeId, config: SmrpConfig) -> Result<Self, SmrpError> {
        config.validate()?;
        let tree = MulticastTree::new(graph, source)?;
        let spt = ShortestPathTree::compute(graph, source);
        Ok(SmrpSession {
            graph,
            tree,
            config,
            shr_baseline: vec![0; graph.node_count()],
            spt,
        })
    }

    /// The underlying multicast tree.
    pub fn tree(&self) -> &MulticastTree {
        &self.tree
    }

    /// The cached unicast shortest-path tree from the source.
    ///
    /// This is the `D_SPF` oracle used by the join bound and, under
    /// [`SelectionMode::NeighborQuery`], the unicast routes along which
    /// neighbors relay join queries. It reflects the constraints passed to
    /// the most recent [`SmrpSession::refresh_spt`] call (initially: the
    /// unrestricted topology).
    pub fn spt(&self) -> &ShortestPathTree {
        &self.spt
    }

    /// Recomputes the cached source SPT under `constraints`, reusing its
    /// buffers.
    ///
    /// **Invalidation contract:** the session never detects topology
    /// changes on its own — whoever injects a [`smrp_net::FailureScenario`]
    /// (or repairs one) must call this before driving further joins or
    /// reshapes through the session, typically with
    /// [`Constraints::avoiding_failures`]. Recovery itself
    /// ([`crate::recovery`]) deliberately does *not* read this cache: its
    /// detours are per-scenario constrained searches, so a recovery pass
    /// can never consume a stale SPT even if the caller forgets to refresh.
    pub fn refresh_spt(&mut self, constraints: Constraints<'_>) {
        self.spt.recompute_constrained(self.graph, constraints);
    }

    /// The topology this session runs over.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The session configuration.
    pub fn config(&self) -> &SmrpConfig {
        &self.config
    }

    /// The multicast source.
    pub fn source(&self) -> NodeId {
        self.tree.source()
    }

    /// Iterator over current members.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.tree.members()
    }

    /// Joins `node` to the session using the SMRP path selection criterion.
    ///
    /// # Example
    ///
    /// ```
    /// use smrp_core::{SmrpConfig, SmrpSession};
    /// use smrp_net::Graph;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut g = Graph::with_nodes(3);
    /// let ids: Vec<_> = g.node_ids().collect();
    /// g.add_link(ids[0], ids[1], 1.0)?;
    /// g.add_link(ids[1], ids[2], 1.0)?;
    /// let mut sess = SmrpSession::new(&g, ids[0], SmrpConfig::default())?;
    /// let out = sess.join(ids[2])?;
    /// assert!(out.within_bound);
    /// assert_eq!(out.path.nodes(), &[ids[0], ids[1], ids[2]]);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// * [`SmrpError::SourceOperation`] — the source cannot join itself;
    /// * [`SmrpError::AlreadyMember`] — duplicate join;
    /// * [`SmrpError::UnknownNode`] / [`SmrpError::NoFeasiblePath`] — the
    ///   node does not exist or cannot reach the tree.
    pub fn join(&mut self, node: NodeId) -> Result<JoinOutcome, SmrpError> {
        if node == self.tree.source() {
            return Err(SmrpError::SourceOperation(node));
        }
        if !self.graph.contains_node(node) {
            return Err(SmrpError::UnknownNode(node));
        }
        if self.tree.is_member(node) {
            return Err(SmrpError::AlreadyMember(node));
        }

        let (merger, spf_delay, within_bound) = if self.tree.is_on_tree(node) {
            // Already a relay: becoming a member needs no new links.
            let spf = self
                .spt
                .distance(node)
                .ok_or(SmrpError::NoFeasiblePath(node))?;
            (node, spf, true)
        } else {
            let sel = select::select_path(
                self.graph,
                &self.tree,
                &self.spt,
                node,
                self.config.d_thresh,
                self.config.selection,
                &[],
            )?;
            self.tree.attach_path(&sel.candidate.approach);
            (sel.candidate.merger, sel.spf_delay, sel.within_bound)
        };
        self.tree.set_member(node, true)?;
        self.shr_baseline[node.index()] = self.tree.shr(node);

        let reshaped = if self.config.auto_reshape {
            self.condition_i_pass(node)
        } else {
            Vec::new()
        };

        let path = self
            .tree
            .path_from_source(node)
            .expect("member was just attached");
        let selected_delay = path.delay(self.graph);
        Ok(JoinOutcome {
            member: node,
            merger,
            path,
            spf_delay,
            selected_delay,
            within_bound,
            reshaped,
        })
    }

    /// Joins `node` as an aggregated attachment point serving `weight`
    /// receivers (§3.3.3 at scale): path selection is identical to
    /// [`join`](Self::join), but the membership enters the Eq. 2 `SHR`/`N`
    /// maintenance with the full population weight.
    ///
    /// # Errors
    ///
    /// The [`join`](Self::join) errors, plus
    /// [`SmrpError::InvalidConfig`] for a zero weight.
    pub fn join_weighted(&mut self, node: NodeId, weight: u32) -> Result<JoinOutcome, SmrpError> {
        if weight == 0 {
            return Err(SmrpError::InvalidConfig {
                name: "weight",
                reason: "aggregated populations must serve at least one receiver",
            });
        }
        let out = self.join(node)?;
        if weight != 1 {
            self.tree.set_member_weight(node, weight)?;
            self.shr_baseline[node.index()] = self.tree.shr(node);
        }
        Ok(out)
    }

    /// Removes `node` from the session, pruning the released branch.
    ///
    /// # Errors
    ///
    /// [`SmrpError::NotMember`] if the node is not a member.
    pub fn leave(&mut self, node: NodeId) -> Result<(), SmrpError> {
        if !self.tree.is_member(node) {
            return Err(SmrpError::NotMember(node));
        }
        self.tree.set_member(node, false)?;
        self.tree.prune_from(node);
        self.shr_baseline[node.index()] = 0;
        Ok(())
    }

    /// Condition I: after `joined` was admitted, re-evaluate members whose
    /// `SHR` grew beyond their baseline. Returns the members that actually
    /// switched paths.
    fn condition_i_pass(&mut self, joined: NodeId) -> Vec<NodeId> {
        let mut switched = Vec::new();
        let members: Vec<NodeId> = self.tree.members().collect();
        for m in members {
            if m == joined {
                continue;
            }
            let current = self.tree.shr(m);
            let baseline = self.shr_baseline[m.index()];
            if current.saturating_sub(baseline) > self.config.reshape_threshold {
                if let Ok(ReshapeOutcome::Switched { .. }) = self.reshape_member(m) {
                    switched.push(m);
                }
            }
        }
        switched
    }

    /// Attempts to reshape `member` (both conditions funnel here).
    ///
    /// The member's subtree is detached from a scratch copy of the tree,
    /// candidates are enumerated against that reduced tree (yielding
    /// *adjusted* `SHR` values), and the best candidate is compared with
    /// the member's current merger. The switch happens only when the new
    /// merger's adjusted `SHR` is strictly smaller, the new path respects
    /// the `D_thresh` bound, and the approach path can actually carry the
    /// subtree (no interior node of the new path belongs to the subtree).
    ///
    /// # Errors
    ///
    /// [`SmrpError::NotMember`] for non-members.
    pub fn reshape_member(&mut self, member: NodeId) -> Result<ReshapeOutcome, SmrpError> {
        if !self.tree.is_member(member) {
            return Err(SmrpError::NotMember(member));
        }
        if self.tree.parent(member).is_none() {
            // The member sits directly at the source-adjacent root spot or
            // is the source itself; nothing to reshape.
            return Ok(ReshapeOutcome::Kept);
        }

        // Build the reduced tree with the member's branch removed.
        let mut reduced = self.tree.clone();
        let old_merger = reduced.detach_subtree(member)?;
        let subtree = reduced.subtree_nodes(member);

        // Candidates against the reduced tree; the moving subtree may be
        // neither merger nor relay.
        let spf_delay = self
            .spt
            .distance(member)
            .ok_or(SmrpError::NoFeasiblePath(member))?;
        let mut excluded = subtree.clone();
        excluded.retain(|&n| n != member);
        let candidates = select::enumerate_candidates(
            self.graph,
            &reduced,
            &self.spt,
            member,
            self.config.selection,
            &excluded,
        );
        let Ok(sel) = select::apply_criterion(candidates, spf_delay, self.config.d_thresh, member)
        else {
            return Ok(ReshapeOutcome::Kept);
        };
        if !sel.within_bound {
            return Ok(ReshapeOutcome::Kept);
        }

        // Adjusted comparison: candidate merger vs current merger, both in
        // the reduced tree.
        let new_merger = sel.candidate.merger;
        if reduced.shr(new_merger) >= reduced.shr(old_merger) {
            return Ok(ReshapeOutcome::Kept);
        }

        // Commit: detach for real and reattach along the new path.
        self.tree.detach_subtree(member)?;
        self.tree.attach_path(&sel.candidate.approach);
        // The move changed SHR for *every* member carried along in the
        // subtree, not just the reshaped one; all of their Condition I
        // baselines restart from the post-move values. Refreshing only the
        // moved member would leave the others comparing against SHR values
        // of a path that no longer exists.
        for n in self.tree.subtree_nodes(member) {
            if self.tree.is_member(n) {
                self.shr_baseline[n.index()] = self.tree.shr(n);
            }
        }
        Ok(ReshapeOutcome::Switched {
            old_merger,
            new_merger,
        })
    }

    /// Condition II: one periodic sweep re-evaluating every member (in
    /// node-id order). Returns how many members switched paths.
    pub fn reshape_sweep(&mut self) -> usize {
        let members: Vec<NodeId> = self.tree.members().collect();
        let mut switched = 0;
        for m in members {
            if matches!(self.reshape_member(m), Ok(ReshapeOutcome::Switched { .. })) {
                switched += 1;
            }
        }
        switched
    }

    /// Runs Condition II sweeps until quiescent (or `max_rounds`). Returns
    /// total switches.
    pub fn reshape_until_stable(&mut self, max_rounds: usize) -> usize {
        let mut total = 0;
        for _ in 0..max_rounds {
            let n = self.reshape_sweep();
            total += n;
            if n == 0 {
                break;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ladder graph where sharing is avoidable: S connects to two rails.
    fn ladder() -> (Graph, Vec<NodeId>) {
        // s - a1 - a2
        //  \  b1 - b2   with rungs a1-b1, a2-b2.
        let mut g = Graph::with_nodes(5);
        let ids: Vec<_> = g.node_ids().collect();
        let [s, a1, a2, b1, b2] = [ids[0], ids[1], ids[2], ids[3], ids[4]];
        g.add_link(s, a1, 1.0).unwrap();
        g.add_link(a1, a2, 1.0).unwrap();
        g.add_link(s, b1, 1.0).unwrap();
        g.add_link(b1, b2, 1.0).unwrap();
        g.add_link(a1, b1, 1.0).unwrap();
        g.add_link(a2, b2, 1.0).unwrap();
        (g, ids)
    }

    #[test]
    fn joins_spread_over_disjoint_paths() {
        let (g, ids) = ladder();
        let [s, _, a2, _, b2] = [ids[0], ids[1], ids[2], ids[3], ids[4]];
        let mut sess = SmrpSession::new(&g, s, SmrpConfig::default()).unwrap();
        sess.join(a2).unwrap();
        let out = sess.join(b2).unwrap();
        // b2 should avoid a2's rail entirely: path S -> b1 -> b2.
        assert_eq!(out.path.nodes(), &[s, ids[3], b2]);
        sess.tree().validate(&g).unwrap();
        // The two member paths share no link.
        let pa = sess.tree().path_from_source(a2).unwrap();
        let pb = sess.tree().path_from_source(b2).unwrap();
        let la = pa.links(&g);
        assert!(pb.links(&g).iter().all(|l| !la.contains(l)));
    }

    #[test]
    fn join_errors() {
        let (g, ids) = ladder();
        let s = ids[0];
        let mut sess = SmrpSession::new(&g, s, SmrpConfig::default()).unwrap();
        assert!(matches!(sess.join(s), Err(SmrpError::SourceOperation(_))));
        sess.join(ids[2]).unwrap();
        assert!(matches!(
            sess.join(ids[2]),
            Err(SmrpError::AlreadyMember(_))
        ));
        assert!(matches!(
            sess.join(NodeId::new(77)),
            Err(SmrpError::UnknownNode(_))
        ));
    }

    #[test]
    fn relay_can_become_member_without_new_links() {
        let (g, ids) = ladder();
        let [s, a1, a2, ..] = [ids[0], ids[1], ids[2], ids[3], ids[4]];
        let mut sess = SmrpSession::new(&g, s, SmrpConfig::default()).unwrap();
        sess.join(a2).unwrap();
        let links_before = sess.tree().links(&g).len();
        let out = sess.join(a1).unwrap();
        assert_eq!(out.merger, a1);
        assert_eq!(sess.tree().links(&g).len(), links_before);
        assert!(sess.tree().is_member(a1));
        sess.tree().validate(&g).unwrap();
    }

    #[test]
    fn leave_prunes_branch() {
        let (g, ids) = ladder();
        let [s, _, a2, _, b2] = [ids[0], ids[1], ids[2], ids[3], ids[4]];
        let mut sess = SmrpSession::new(&g, s, SmrpConfig::default()).unwrap();
        sess.join(a2).unwrap();
        sess.join(b2).unwrap();
        sess.leave(a2).unwrap();
        assert!(!sess.tree().is_on_tree(a2));
        assert!(!sess.tree().is_on_tree(ids[1]));
        assert!(sess.tree().is_member(b2));
        sess.tree().validate(&g).unwrap();
        assert!(matches!(sess.leave(a2), Err(SmrpError::NotMember(_))));
    }

    #[test]
    fn reshape_kept_when_tree_is_already_good() {
        let (g, ids) = ladder();
        let [s, _, a2, _, b2] = [ids[0], ids[1], ids[2], ids[3], ids[4]];
        let mut sess = SmrpSession::new(&g, s, SmrpConfig::default()).unwrap();
        sess.join(a2).unwrap();
        sess.join(b2).unwrap();
        assert_eq!(sess.reshape_sweep(), 0);
    }

    #[test]
    fn reshape_moves_member_off_crowded_path() {
        // Chain sharing: with auto_reshape off, force both members onto one
        // rail by a tight bound? Instead build the sharing directly, then
        // let the sweep fix it.
        let (g, ids) = ladder();
        let [s, a1, a2, b1, b2] = [ids[0], ids[1], ids[2], ids[3], ids[4]];
        let mut sess = SmrpSession::new(
            &g,
            s,
            SmrpConfig {
                auto_reshape: false,
                ..SmrpConfig::default()
            },
        )
        .unwrap();
        sess.join(a2).unwrap();
        sess.join(b2).unwrap();
        // Manually sabotage: detach b2 and hang it under a2's rail via the
        // rung, creating heavy sharing on S-a1.
        sess.tree.detach_subtree(b2).unwrap();
        sess.tree.attach_path(&smrp_net::Path::new(vec![b2, a2]));
        sess.tree.validate(&g).unwrap();
        assert_eq!(sess.tree().shr(b2), 5); // N_a1=2 + N_a2=2 + N_b2=1.
        let switched = sess.reshape_sweep();
        assert!(switched >= 1);
        sess.tree().validate(&g).unwrap();
        // b2 must be back on its own rail (merger S, SHR adjusted 0).
        let pb = sess.tree().path_from_source(b2).unwrap();
        assert_eq!(pb.nodes(), &[s, b1, b2]);
        let _ = a1;
    }

    #[test]
    fn reshape_until_stable_terminates() {
        let (g, ids) = ladder();
        let mut sess = SmrpSession::new(&g, ids[0], SmrpConfig::default()).unwrap();
        sess.join(ids[2]).unwrap();
        sess.join(ids[4]).unwrap();
        assert_eq!(sess.reshape_until_stable(10), 0);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let (g, ids) = ladder();
        let bad = SmrpConfig {
            d_thresh: -0.5,
            ..SmrpConfig::default()
        };
        assert!(matches!(
            SmrpSession::new(&g, ids[0], bad),
            Err(SmrpError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn reshape_of_non_member_errors() {
        let (g, ids) = ladder();
        let mut sess = SmrpSession::new(&g, ids[0], SmrpConfig::default()).unwrap();
        assert!(matches!(
            sess.reshape_member(ids[1]),
            Err(SmrpError::NotMember(_))
        ));
    }

    #[test]
    fn reshape_refreshes_baselines_of_all_carried_members() {
        // Regression test: when a reshape moves a whole branch, every
        // member riding along gets a fresh Condition I baseline, not just
        // the member that initiated the move.
        let (g, ids) = ladder();
        let [s, a1, a2, b1, b2] = [ids[0], ids[1], ids[2], ids[3], ids[4]];
        let mut sess = SmrpSession::new(
            &g,
            s,
            SmrpConfig {
                auto_reshape: false,
                ..SmrpConfig::default()
            },
        )
        .unwrap();
        sess.join(a2).unwrap();
        sess.join(b1).unwrap();
        sess.join(b2).unwrap();
        // Sabotage: hang the b-rail branch (members b1 and b2) under a1 via
        // the rung, crowding S-a1.
        sess.tree.detach_subtree(b1).unwrap();
        sess.tree.attach_path(&smrp_net::Path::new(vec![b1, a1]));
        sess.tree.validate(&g).unwrap();
        let stale_b2 = sess.shr_baseline[b2.index()];
        assert_ne!(stale_b2, sess.tree().shr(b2), "sabotage must stale b2");

        let out = sess.reshape_member(b1).unwrap();
        assert!(matches!(out, ReshapeOutcome::Switched { .. }));
        sess.tree().validate(&g).unwrap();
        // b1 is back on its own rail and carried b2 with it; both baselines
        // must match the post-move SHR values.
        assert_eq!(
            sess.tree().path_from_source(b2).unwrap().nodes(),
            &[s, b1, b2]
        );
        for m in [b1, b2] {
            assert_eq!(
                sess.shr_baseline[m.index()],
                sess.tree().shr(m),
                "carried member's baseline not refreshed"
            );
        }
    }

    #[test]
    fn refresh_spt_tracks_failure_scenarios() {
        let (g, ids) = ladder();
        let [s, a1, a2, ..] = [ids[0], ids[1], ids[2], ids[3], ids[4]];
        let mut sess = SmrpSession::new(&g, s, SmrpConfig::default()).unwrap();
        // Steady state: a2 is two hops away along its rail.
        assert_eq!(sess.spt().distance(a2), Some(2.0));
        // a1 fails: until the caller refreshes, the cache is stale by
        // design; after the refresh the detour via the other rail shows up.
        let scenario = smrp_net::FailureScenario::node(a1);
        sess.refresh_spt(Constraints::avoiding_failures(&scenario));
        assert_eq!(sess.spt().distance(a2), Some(3.0)); // s-b1-b2-a2.
        assert_eq!(sess.spt().distance(a1), None);
        // Repair: back to the unrestricted table.
        sess.refresh_spt(Constraints::unrestricted());
        assert_eq!(sess.spt().distance(a2), Some(2.0));
    }

    #[test]
    fn condition_i_triggers_on_shr_growth() {
        // Line topology where later joins crowd an early member's path and
        // an alternative rail exists.
        let (g, ids) = ladder();
        let [s, a1, a2, b1, b2] = [ids[0], ids[1], ids[2], ids[3], ids[4]];
        let mut sess = SmrpSession::new(
            &g,
            s,
            SmrpConfig {
                reshape_threshold: 0,
                ..SmrpConfig::default()
            },
        )
        .unwrap();
        sess.join(a2).unwrap();
        sess.join(b2).unwrap();
        // Join a1 and b1 as members: each sits on an existing rail and
        // raises SHR of the rail's leaf; with threshold 0, Condition I
        // re-evaluates a2/b2, which should keep (no better option).
        let out = sess.join(a1).unwrap();
        sess.tree().validate(&g).unwrap();
        // a2's SHR grew from 2 to 4; reshape was attempted. Whether it
        // switches depends on alternatives; the tree must stay valid and
        // members connected either way.
        assert!(sess.tree().is_member(a2));
        let _ = (out, b1);
    }
}
