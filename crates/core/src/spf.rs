//! The SPF baseline: shortest-path-first multicast tree construction.
//!
//! Traditional multicast routing protocols (PIM-SM, MOSPF — §1 and §4.2 of
//! the paper) connect each member to the source along the path chosen by
//! the underlying unicast routing protocol, i.e. the shortest path. This
//! module implements that baseline over the same [`MulticastTree`]
//! representation so every metric (`SHR`, delay, cost, recovery distance)
//! is directly comparable with SMRP.
//!
//! Joining walks the member's unicast shortest path toward the source and
//! grafts the suffix beyond the first on-tree node encountered — exactly
//! PIM's `Join` propagation, which stops at the first router that already
//! has state for the group.

use smrp_net::dijkstra::ShortestPathTree;
use smrp_net::{Graph, NodeId, Path};

use crate::error::SmrpError;
use crate::tree::MulticastTree;

/// An SPF-based (PIM-style) multicast session over a fixed topology.
///
/// # Example
///
/// ```
/// use smrp_core::SpfSession;
/// use smrp_net::Graph;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = Graph::with_nodes(3);
/// let ids: Vec<_> = g.node_ids().collect();
/// g.add_link(ids[0], ids[1], 1.0)?;
/// g.add_link(ids[1], ids[2], 1.0)?;
/// let mut sess = SpfSession::new(&g, ids[0])?;
/// sess.join(ids[2])?;
/// assert_eq!(sess.tree().delay_to(&g, ids[2]), Some(2.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SpfSession<'g> {
    graph: &'g Graph,
    tree: MulticastTree,
    /// Shortest-path tree from the source, reused across joins (unicast
    /// routing state is stable absent failures).
    spt: ShortestPathTree,
}

impl<'g> SpfSession<'g> {
    /// Creates an empty SPF session rooted at `source`.
    ///
    /// # Errors
    ///
    /// Fails on an unknown source node.
    pub fn new(graph: &'g Graph, source: NodeId) -> Result<Self, SmrpError> {
        let tree = MulticastTree::new(graph, source)?;
        let spt = ShortestPathTree::compute(graph, source);
        Ok(SpfSession { graph, tree, spt })
    }

    /// The underlying multicast tree.
    pub fn tree(&self) -> &MulticastTree {
        &self.tree
    }

    /// The topology this session runs over.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The multicast source.
    pub fn source(&self) -> NodeId {
        self.tree.source()
    }

    /// Iterator over current members.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.tree.members()
    }

    /// Joins `node` along its unicast shortest path to the source.
    ///
    /// Returns the member's resulting multicast path.
    ///
    /// # Errors
    ///
    /// * [`SmrpError::SourceOperation`] — the source cannot join;
    /// * [`SmrpError::AlreadyMember`] — duplicate join;
    /// * [`SmrpError::UnknownNode`] / [`SmrpError::NoFeasiblePath`].
    pub fn join(&mut self, node: NodeId) -> Result<Path, SmrpError> {
        if node == self.tree.source() {
            return Err(SmrpError::SourceOperation(node));
        }
        if !self.graph.contains_node(node) {
            return Err(SmrpError::UnknownNode(node));
        }
        if self.tree.is_member(node) {
            return Err(SmrpError::AlreadyMember(node));
        }
        if !self.tree.is_on_tree(node) {
            let spf_path = self
                .spt
                .path_to(node)
                .ok_or(SmrpError::NoFeasiblePath(node))?;
            // Walk from the member toward the source; stop at the first
            // on-tree node (PIM join semantics). The prefix beyond it is
            // grafted.
            let nodes = spf_path.nodes();
            let mut graft = vec![node];
            for &hop in nodes.iter().rev().skip(1) {
                graft.push(hop);
                if self.tree.is_on_tree(hop) {
                    break;
                }
            }
            self.tree.attach_path(&Path::new(graft));
        }
        self.tree.set_member(node, true)?;
        Ok(self
            .tree
            .path_from_source(node)
            .expect("member was just attached"))
    }

    /// Removes `node` from the session, pruning the released branch.
    ///
    /// # Errors
    ///
    /// [`SmrpError::NotMember`] if the node is not a member.
    pub fn leave(&mut self, node: NodeId) -> Result<(), SmrpError> {
        if !self.tree.is_member(node) {
            return Err(SmrpError::NotMember(node));
        }
        self.tree.set_member(node, false)?;
        self.tree.prune_from(node);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 1 graph (same weights as the smrp-net tests).
    fn figure1() -> (Graph, [NodeId; 5]) {
        let mut g = Graph::with_nodes(5);
        let ids: Vec<_> = g.node_ids().collect();
        let [s, a, b, c, d] = [ids[0], ids[1], ids[2], ids[3], ids[4]];
        g.add_link(s, a, 1.0).unwrap();
        g.add_link(a, c, 1.0).unwrap();
        g.add_link(a, d, 1.0).unwrap();
        g.add_link(c, d, 2.0).unwrap();
        g.add_link(d, b, 1.0).unwrap();
        g.add_link(b, s, 2.0).unwrap();
        (g, [s, a, b, c, d])
    }

    #[test]
    fn joins_follow_shortest_paths() {
        let (g, [s, a, _, c, d]) = figure1();
        let mut sess = SpfSession::new(&g, s).unwrap();
        let pc = sess.join(c).unwrap();
        assert_eq!(pc.nodes(), &[s, a, c]);
        let pd = sess.join(d).unwrap();
        assert_eq!(pd.nodes(), &[s, a, d]);
        sess.tree().validate(&g).unwrap();
        // This reconstructs exactly Figure 1(a): SHR(S,C) = 3.
        assert_eq!(sess.tree().shr(c), 3);
    }

    #[test]
    fn second_join_grafts_only_the_suffix() {
        let (g, [s, _a, _, c, d]) = figure1();
        let mut sess = SpfSession::new(&g, s).unwrap();
        sess.join(c).unwrap();
        let before = sess.tree().links(&g).len();
        sess.join(d).unwrap();
        // Only the A-D link is added; S-A is shared.
        assert_eq!(sess.tree().links(&g).len(), before + 1);
    }

    #[test]
    fn join_and_leave_round_trip() {
        let (g, [s, _, _, c, d]) = figure1();
        let mut sess = SpfSession::new(&g, s).unwrap();
        sess.join(c).unwrap();
        sess.join(d).unwrap();
        sess.leave(c).unwrap();
        sess.leave(d).unwrap();
        assert_eq!(sess.tree().member_count(), 0);
        assert_eq!(sess.tree().links(&g).len(), 0);
        sess.tree().validate(&g).unwrap();
    }

    #[test]
    fn error_paths() {
        let (g, [s, _, _, c, _]) = figure1();
        let mut sess = SpfSession::new(&g, s).unwrap();
        assert!(matches!(sess.join(s), Err(SmrpError::SourceOperation(_))));
        sess.join(c).unwrap();
        assert!(matches!(sess.join(c), Err(SmrpError::AlreadyMember(_))));
        assert!(matches!(sess.leave(s), Err(SmrpError::NotMember(_))));
        assert!(matches!(
            sess.join(NodeId::new(50)),
            Err(SmrpError::UnknownNode(_))
        ));
    }

    #[test]
    fn relay_upgrade_to_member() {
        let (g, [s, a, _, c, _]) = figure1();
        let mut sess = SpfSession::new(&g, s).unwrap();
        sess.join(c).unwrap();
        let p = sess.join(a).unwrap();
        assert_eq!(p.nodes(), &[s, a]);
        assert!(sess.tree().is_member(a));
        sess.tree().validate(&g).unwrap();
    }

    #[test]
    fn disconnected_member_is_rejected() {
        let mut g = Graph::with_nodes(3);
        let ids: Vec<_> = g.node_ids().collect();
        g.add_link(ids[0], ids[1], 1.0).unwrap();
        let mut sess = SpfSession::new(&g, ids[0]).unwrap();
        assert!(matches!(
            sess.join(ids[2]),
            Err(SmrpError::NoFeasiblePath(_))
        ));
    }
}
