//! Cost-minimizing multicast baseline (greedy Steiner heuristic).
//!
//! §4.2 of the paper notes that its conclusions should carry over from
//! SPF-based protocols to *cost-minimizing* multicast routing (citing Wei &
//! Estrin's trade-off study). This module provides that second baseline: an
//! incremental variant of the Takahashi–Matsuyama heuristic, in which each
//! joining member connects to the **nearest node of the current tree** by
//! link cost — maximizing sharing, which is exactly the property SMRP
//! deliberately gives up. Recovery metrics computed against this tree show
//! the other end of the sharing spectrum.

use smrp_net::dijkstra::{self, Constraints};
use smrp_net::{Graph, NodeId, Path};

use crate::error::SmrpError;
use crate::tree::MulticastTree;

/// A cost-minimizing (greedy Steiner) multicast session.
///
/// # Example
///
/// ```
/// use smrp_core::steiner::SteinerSession;
/// use smrp_net::Graph;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = Graph::with_nodes(4);
/// let ids: Vec<_> = g.node_ids().collect();
/// g.add_link(ids[0], ids[1], 1.0)?;
/// g.add_link(ids[1], ids[2], 1.0)?;
/// g.add_link(ids[1], ids[3], 1.0)?;
/// let mut sess = SteinerSession::new(&g, ids[0])?;
/// sess.join(ids[2])?;
/// // ids[3] connects to the nearest tree node (ids[1]), not to the source.
/// let p = sess.join(ids[3])?;
/// assert_eq!(p.nodes().last(), Some(&ids[3]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SteinerSession<'g> {
    graph: &'g Graph,
    tree: MulticastTree,
}

impl<'g> SteinerSession<'g> {
    /// Creates an empty session rooted at `source`.
    ///
    /// # Errors
    ///
    /// Fails on an unknown source node.
    pub fn new(graph: &'g Graph, source: NodeId) -> Result<Self, SmrpError> {
        Ok(SteinerSession {
            graph,
            tree: MulticastTree::new(graph, source)?,
        })
    }

    /// The underlying multicast tree.
    pub fn tree(&self) -> &MulticastTree {
        &self.tree
    }

    /// The multicast source.
    pub fn source(&self) -> NodeId {
        self.tree.source()
    }

    /// Iterator over current members.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.tree.members()
    }

    /// Joins `node` through the minimum-delay path to the *nearest* node of
    /// the current tree (Takahashi–Matsuyama step).
    ///
    /// Returns the member's resulting multicast path from the source.
    ///
    /// # Errors
    ///
    /// Mirrors [`crate::SpfSession::join`].
    pub fn join(&mut self, node: NodeId) -> Result<Path, SmrpError> {
        if node == self.tree.source() {
            return Err(SmrpError::SourceOperation(node));
        }
        if !self.graph.contains_node(node) {
            return Err(SmrpError::UnknownNode(node));
        }
        if self.tree.is_member(node) {
            return Err(SmrpError::AlreadyMember(node));
        }
        if !self.tree.is_on_tree(node) {
            let tree = &self.tree;
            let approach = dijkstra::shortest_path_to_any(
                self.graph,
                node,
                Constraints::unrestricted(),
                |n| tree.is_on_tree(n),
            )
            .ok_or(SmrpError::NoFeasiblePath(node))?;
            self.tree.attach_path(&approach);
        }
        self.tree.set_member(node, true)?;
        Ok(self
            .tree
            .path_from_source(node)
            .expect("member was just attached"))
    }

    /// Removes `node` from the session, pruning the released branch.
    ///
    /// # Errors
    ///
    /// [`SmrpError::NotMember`] if the node is not a member.
    pub fn leave(&mut self, node: NodeId) -> Result<(), SmrpError> {
        if !self.tree.is_member(node) {
            return Err(SmrpError::NotMember(node));
        }
        self.tree.set_member(node, false)?;
        self.tree.prune_from(node);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Comb: source at one end, members hanging off a shared spine.
    ///
    /// ```text
    /// S -1- a -1- b -1- c
    ///       |5    |5    |5
    ///       m1    m2    m3     (each m also has a 4-weight link to S)
    /// ```
    fn comb() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::with_nodes(7);
        let ids: Vec<_> = g.node_ids().collect();
        let [s, a, b, c, m1, m2, m3] = [ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6]];
        g.add_link(s, a, 1.0).unwrap();
        g.add_link(a, b, 1.0).unwrap();
        g.add_link(b, c, 1.0).unwrap();
        g.add_link(a, m1, 5.0).unwrap();
        g.add_link(b, m2, 5.0).unwrap();
        g.add_link(c, m3, 5.0).unwrap();
        g.add_link(s, m1, 4.0).unwrap();
        g.add_link(s, m2, 4.0).unwrap();
        g.add_link(s, m3, 4.0).unwrap();
        (g, ids)
    }

    #[test]
    fn steiner_tree_is_cheaper_than_spf_tree() {
        let (g, ids) = comb();
        let members = [ids[4], ids[5], ids[6]];

        let mut steiner = SteinerSession::new(&g, ids[0]).unwrap();
        let mut spf = crate::spf::SpfSession::new(&g, ids[0]).unwrap();
        for &m in &members {
            steiner.join(m).unwrap();
            spf.join(m).unwrap();
        }
        steiner.tree().validate(&g).unwrap();
        spf.tree().validate(&g).unwrap();
        // SPF connects each member by its direct 4-link: cost 12.
        // Steiner shares the cheap spine once members force it on-tree.
        assert!(steiner.tree().cost(&g) <= spf.tree().cost(&g));
    }

    #[test]
    fn second_member_attaches_to_nearest_tree_node() {
        let mut g = Graph::with_nodes(4);
        let ids: Vec<_> = g.node_ids().collect();
        let [s, r, m1, m2] = [ids[0], ids[1], ids[2], ids[3]];
        g.add_link(s, r, 10.0).unwrap();
        g.add_link(r, m1, 1.0).unwrap();
        g.add_link(r, m2, 1.0).unwrap();
        g.add_link(s, m2, 10.5).unwrap();
        let mut sess = SteinerSession::new(&g, s).unwrap();
        sess.join(m1).unwrap();
        let p = sess.join(m2).unwrap();
        // m2 goes through the already-on-tree relay r (cost 1), not the
        // direct 10.5 link.
        assert_eq!(p.nodes(), &[s, r, m2]);
    }

    #[test]
    fn join_and_leave_round_trip() {
        let (g, ids) = comb();
        let mut sess = SteinerSession::new(&g, ids[0]).unwrap();
        sess.join(ids[4]).unwrap();
        sess.join(ids[5]).unwrap();
        sess.leave(ids[4]).unwrap();
        sess.tree().validate(&g).unwrap();
        sess.leave(ids[5]).unwrap();
        assert_eq!(sess.tree().links(&g).len(), 0);
    }

    #[test]
    fn error_paths() {
        let (g, ids) = comb();
        let mut sess = SteinerSession::new(&g, ids[0]).unwrap();
        assert!(matches!(
            sess.join(ids[0]),
            Err(SmrpError::SourceOperation(_))
        ));
        sess.join(ids[4]).unwrap();
        assert!(matches!(
            sess.join(ids[4]),
            Err(SmrpError::AlreadyMember(_))
        ));
        assert!(matches!(sess.leave(ids[5]), Err(SmrpError::NotMember(_))));
        assert!(matches!(
            sess.join(NodeId::new(99)),
            Err(SmrpError::UnknownNode(_))
        ));
    }

    #[test]
    fn relay_upgrade_keeps_structure() {
        let mut g = Graph::with_nodes(3);
        let ids: Vec<_> = g.node_ids().collect();
        let [s, r, m] = [ids[0], ids[1], ids[2]];
        g.add_link(s, r, 10.0).unwrap();
        g.add_link(r, m, 1.0).unwrap();
        let mut sess = SteinerSession::new(&g, s).unwrap();
        sess.join(m).unwrap(); // pulls relay r on-tree.
        let links_before = sess.tree().links(&g).len();
        sess.join(r).unwrap(); // the relay becomes a member in place.
        assert_eq!(sess.tree().links(&g).len(), links_before);
        assert!(sess.tree().is_member(r));
        sess.tree().validate(&g).unwrap();
    }
}
