//! SMRP join path selection (§3.2.2 and §3.3.1 of the paper).
//!
//! A joining member `NR` evaluates candidate multicast paths
//! `P_T^{R_i}(S, NR)` — the on-tree path `S → R_i` extended by an *approach
//! path* `R_i → NR` that merges into the tree exactly at `R_i`. The **path
//! selection criterion** picks the candidate whose merger node has minimum
//! `SHR(S, R_i)`, subject to the delay bound
//!
//! ```text
//! D(S, NR) ≤ (1 + D_thresh) · D_SPF(S, NR)
//! ```
//!
//! with ties broken by the shorter path (and deterministically by node id
//! thereafter).
//!
//! Two candidate-enumeration modes are implemented:
//!
//! * [`SelectionMode::FullTopology`] — the paper's base assumption: `NR`
//!   knows the topology and can generate all merge options. Implemented
//!   with a single *sink-constrained* Dijkstra from `NR`: on-tree nodes act
//!   as absorbing sinks, so for every on-tree node we obtain the shortest
//!   approach path whose **first** on-tree contact is that node (footnote 4:
//!   only the shortest way of connecting to each `R_i` is considered).
//! * [`SelectionMode::NeighborQuery`] — the query scheme of §3.3.1 for
//!   deployments without topology knowledge: each graph neighbor of `NR`
//!   relays a query along *its* unicast shortest path toward the source;
//!   the first on-tree node hit answers with its `SHR`. This explores only
//!   a subset of merge options and is evaluated as an ablation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use smrp_net::dijkstra::ShortestPathTree;
use smrp_net::{Graph, NodeId, Path};

use crate::error::SmrpError;
use crate::tree::MulticastTree;

/// How a joining node discovers candidate merge points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionMode {
    /// Full topology knowledge (§3.2.2); all merge options considered.
    #[default]
    FullTopology,
    /// Neighbor-relayed query scheme (§3.3.1); only first-hit on-tree nodes
    /// along neighbors' shortest paths are considered.
    NeighborQuery,
}

/// One candidate multicast path for a joining node.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinCandidate {
    /// The on-tree node `R_i` where the path merges into the tree.
    pub merger: NodeId,
    /// Approach path from the joining node to the merger
    /// (`[NR, …, R_i]`); interior nodes are off-tree.
    pub approach: Path,
    /// Total delay of the candidate: tree delay `S → R_i` plus approach
    /// delay (`D^{R_i}_{S,NR}` in the paper).
    pub total_delay: f64,
    /// `SHR(S, R_i)` of the merger at evaluation time.
    pub shr: u32,
}

/// Result of running the path selection criterion.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// The winning candidate.
    pub candidate: JoinCandidate,
    /// The unicast shortest-path delay `D_SPF(S, NR)` used for the bound.
    pub spf_delay: f64,
    /// Whether the winner satisfied the `D_thresh` bound. When no candidate
    /// satisfies it, the minimum-delay candidate is returned as a fallback
    /// with `within_bound == false` (the paper leaves this case
    /// unspecified; refusing the join would needlessly drop the receiver).
    pub within_bound: bool,
}

#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Enumerates all merge candidates for `nr` under `mode`.
///
/// `nr` must be off-tree (an on-tree node "joins" by simply declaring
/// membership; [`crate::session::SmrpSession::join`] handles that case).
/// Nodes listed in `excluded` are treated as if they were not on the tree
/// and may not be traversed (used by reshaping to keep the moving subtree
/// out of consideration).
///
/// `spt` is the unicast shortest-path tree rooted at the multicast source
/// (the routers' steady-state routing table in the paper's model). It is
/// consulted by [`SelectionMode::NeighborQuery`] to trace how neighbors
/// relay the query toward the source; callers with a live session should
/// pass [`crate::session::SmrpSession::spt`] so the (possibly
/// failure-constrained) cached tree is reused instead of recomputed.
pub fn enumerate_candidates(
    graph: &Graph,
    tree: &MulticastTree,
    spt: &ShortestPathTree,
    nr: NodeId,
    mode: SelectionMode,
    excluded: &[NodeId],
) -> Vec<JoinCandidate> {
    match mode {
        SelectionMode::FullTopology => sink_constrained_candidates(graph, tree, nr, excluded),
        SelectionMode::NeighborQuery => neighbor_query_candidates(graph, tree, spt, nr, excluded),
    }
}

/// Whether `node` is a valid merge target: on-tree, connected to the
/// source, and not excluded.
fn is_sink(tree: &MulticastTree, connected: &[bool], node: NodeId, excluded: &[NodeId]) -> bool {
    tree.is_on_tree(node) && connected[node.index()] && !excluded.contains(&node)
}

fn connectivity_mask(tree: &MulticastTree, n: usize) -> Vec<bool> {
    let mut mask = vec![false; n];
    for u in tree.source_connected_nodes() {
        mask[u.index()] = true;
    }
    mask
}

/// Single-source Dijkstra from `nr` in which on-tree nodes absorb: their
/// outgoing edges are never relaxed, so the settled path to each on-tree
/// node is the shortest approach whose first on-tree contact is that node.
fn sink_constrained_candidates(
    graph: &Graph,
    tree: &MulticastTree,
    nr: NodeId,
    excluded: &[NodeId],
) -> Vec<JoinCandidate> {
    let n = graph.node_count();
    let connected = connectivity_mask(tree, n);
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    let mut candidates = Vec::new();

    if excluded.contains(&nr) {
        return candidates;
    }
    dist[nr.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: nr,
    });

    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if done[u.index()] {
            continue;
        }
        done[u.index()] = true;
        if u != nr && is_sink(tree, &connected, u, excluded) {
            // Record the candidate and absorb: do not relax outgoing edges.
            let mut nodes = vec![u];
            let mut cur = u;
            while let Some(p) = parent[cur.index()] {
                nodes.push(p);
                cur = p;
            }
            nodes.reverse(); // now NR -> ... -> u
            let approach = Path::new(nodes);
            let tree_delay = tree
                .delay_to(graph, u)
                .expect("sink is connected to the source");
            candidates.push(JoinCandidate {
                merger: u,
                total_delay: tree_delay + d,
                approach,
                shr: tree.shr(u),
            });
            continue;
        }
        // An excluded node may not be traversed at all.
        if u != nr && excluded.contains(&u) {
            continue;
        }
        // A detached/on-tree-but-unconnected node also must not relay.
        if u != nr && tree.is_on_tree(u) && !connected[u.index()] {
            continue;
        }
        for &(v, l) in graph.adjacency(u) {
            if done[v.index()] {
                continue;
            }
            let nd = d + graph.link(l).delay();
            if nd < dist[v.index()]
                || (nd == dist[v.index()] && parent[v.index()].is_some_and(|p| u < p))
            {
                dist[v.index()] = nd;
                parent[v.index()] = Some(u);
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }
    candidates
}

/// §3.3.1 query scheme: each neighbor forwards the query along its own
/// unicast shortest path to the source; the first on-tree node met becomes
/// a candidate.
fn neighbor_query_candidates(
    graph: &Graph,
    tree: &MulticastTree,
    spt: &ShortestPathTree,
    nr: NodeId,
    excluded: &[NodeId],
) -> Vec<JoinCandidate> {
    let n = graph.node_count();
    let connected = connectivity_mask(tree, n);
    let mut candidates: Vec<JoinCandidate> = Vec::new();

    for neighbor in graph.neighbors(nr) {
        if excluded.contains(&neighbor) {
            continue;
        }
        // The approach so far: NR -> neighbor.
        let mut approach_nodes = vec![nr, neighbor];
        let mut merger = None;
        if is_sink(tree, &connected, neighbor, excluded) {
            merger = Some(neighbor);
        } else {
            // Follow the neighbor's unicast shortest path toward the source,
            // read off the caller's cached source SPT.
            let Some(path) = spt.path_to(neighbor) else {
                continue;
            };
            // Walk from the neighbor toward the source (reverse order).
            let nodes = path.nodes();
            for &hop in nodes.iter().rev().skip(1) {
                approach_nodes.push(hop);
                if is_sink(tree, &connected, hop, excluded) {
                    merger = Some(hop);
                    break;
                }
                if excluded.contains(&hop) {
                    break;
                }
            }
        }
        let Some(merger) = merger else {
            continue;
        };
        // The relayed path must be loop-free and must not cross NR again.
        let mut seen = vec![false; n];
        let mut simple = true;
        for node in &approach_nodes {
            if seen[node.index()] {
                simple = false;
                break;
            }
            seen[node.index()] = true;
        }
        if !simple {
            continue;
        }
        let approach = Path::new(approach_nodes);
        let tree_delay = tree
            .delay_to(graph, merger)
            .expect("sink is connected to the source");
        let total_delay = tree_delay + approach.delay(graph);
        let candidate = JoinCandidate {
            merger,
            approach,
            total_delay,
            shr: tree.shr(merger),
        };
        // Deduplicate by merger, keeping the shorter approach.
        match candidates.iter_mut().find(|c| c.merger == merger) {
            Some(existing) => {
                if candidate.total_delay < existing.total_delay {
                    *existing = candidate;
                }
            }
            None => candidates.push(candidate),
        }
    }
    candidates
}

/// Applies the paper's path selection criterion over `candidates`.
///
/// Filters by the `(1 + d_thresh) · spf_delay` bound, then minimizes `SHR`,
/// breaking ties by `total_delay`, then by merger node id. If nothing
/// passes the bound, falls back to the minimum-delay candidate (flagged in
/// [`Selection::within_bound`]).
pub fn apply_criterion(
    candidates: Vec<JoinCandidate>,
    spf_delay: f64,
    d_thresh: f64,
    nr: NodeId,
) -> Result<Selection, SmrpError> {
    if candidates.is_empty() {
        return Err(SmrpError::NoFeasiblePath(nr));
    }
    let bound = (1.0 + d_thresh) * spf_delay;
    // Tolerate floating-point dust on the boundary (the paper's examples
    // treat "equal to the bound" as admissible).
    let eps = 1e-9 * bound.max(1.0);
    let mut best_in: Option<&JoinCandidate> = None;
    let mut best_any: Option<&JoinCandidate> = None;
    for c in &candidates {
        if c.total_delay <= bound + eps {
            best_in = Some(match best_in {
                None => c,
                Some(b) => pick_by_criterion(b, c),
            });
        }
        best_any = Some(match best_any {
            None => c,
            Some(b) => pick_by_delay(b, c),
        });
    }
    match best_in {
        Some(win) => Ok(Selection {
            candidate: win.clone(),
            spf_delay,
            within_bound: true,
        }),
        None => Ok(Selection {
            candidate: best_any.expect("candidates is non-empty").clone(),
            spf_delay,
            within_bound: false,
        }),
    }
}

fn pick_by_criterion<'a>(a: &'a JoinCandidate, b: &'a JoinCandidate) -> &'a JoinCandidate {
    match a
        .shr
        .cmp(&b.shr)
        .then(a.total_delay.total_cmp(&b.total_delay))
        .then(a.merger.cmp(&b.merger))
    {
        Ordering::Greater => b,
        _ => a,
    }
}

fn pick_by_delay<'a>(a: &'a JoinCandidate, b: &'a JoinCandidate) -> &'a JoinCandidate {
    match a
        .total_delay
        .total_cmp(&b.total_delay)
        .then(a.merger.cmp(&b.merger))
    {
        Ordering::Greater => b,
        _ => a,
    }
}

/// Convenience: enumerate candidates and apply the criterion in one step.
///
/// `spt` must be the unicast shortest-path tree rooted at the multicast
/// source under the constraints currently in force; it supplies
/// `D_SPF(S, NR)` for the delay bound (and the relay routes in
/// [`SelectionMode::NeighborQuery`]) without rerunning Dijkstra per join.
///
/// # Errors
///
/// [`SmrpError::NoFeasiblePath`] when `nr` cannot reach the tree at all.
pub fn select_path(
    graph: &Graph,
    tree: &MulticastTree,
    spt: &ShortestPathTree,
    nr: NodeId,
    d_thresh: f64,
    mode: SelectionMode,
    excluded: &[NodeId],
) -> Result<Selection, SmrpError> {
    let spf_delay = spt.distance(nr).ok_or(SmrpError::NoFeasiblePath(nr))?;
    let candidates = enumerate_candidates(graph, tree, spt, nr, mode, excluded);
    apply_criterion(candidates, spf_delay, d_thresh, nr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smrp_net::Graph;

    /// Source SPT helper for tests without a session.
    fn spt_of(g: &Graph, t: &MulticastTree) -> ShortestPathTree {
        ShortestPathTree::compute(g, t.source())
    }

    /// Small Y topology: S at the top, tree S-A with member M under A;
    /// joining node J can reach A directly (short) or S via B (longer).
    fn y_graph() -> (Graph, MulticastTree, [NodeId; 5]) {
        let mut g = Graph::with_nodes(5);
        let ids: Vec<_> = g.node_ids().collect();
        let [s, a, m, j, b] = [ids[0], ids[1], ids[2], ids[3], ids[4]];
        g.add_link(s, a, 1.0).unwrap();
        g.add_link(a, m, 1.0).unwrap();
        g.add_link(a, j, 1.0).unwrap();
        g.add_link(j, b, 1.0).unwrap();
        g.add_link(b, s, 1.5).unwrap();
        let mut t = MulticastTree::new(&g, s).unwrap();
        t.attach_path(&Path::new(vec![m, a, s]));
        t.set_member(m, true).unwrap();
        (g, t, [s, a, m, j, b])
    }

    #[test]
    fn full_topology_enumerates_first_hit_mergers() {
        let (g, t, [s, a, m, j, _]) = y_graph();
        let cands =
            enumerate_candidates(&g, &t, &spt_of(&g, &t), j, SelectionMode::FullTopology, &[]);
        let mergers: Vec<_> = cands.iter().map(|c| c.merger).collect();
        // A is first-hit via the direct link; S via B; M only via A so it
        // must NOT appear (merge would really happen at A).
        assert!(mergers.contains(&a));
        assert!(mergers.contains(&s));
        assert!(!mergers.contains(&m));
    }

    #[test]
    fn candidate_totals_combine_tree_and_approach_delay() {
        let (g, t, [s, a, _, j, _]) = y_graph();
        let cands =
            enumerate_candidates(&g, &t, &spt_of(&g, &t), j, SelectionMode::FullTopology, &[]);
        let via_a = cands.iter().find(|c| c.merger == a).unwrap();
        assert_eq!(via_a.total_delay, 1.0 + 1.0); // tree S->A plus J->A.
        assert_eq!(via_a.approach.nodes(), &[j, a]);
        let via_s = cands.iter().find(|c| c.merger == s).unwrap();
        assert_eq!(via_s.total_delay, 2.5); // J->B->S approach, no tree part.
        let _ = g;
    }

    #[test]
    fn criterion_prefers_low_shr_within_bound() {
        let (g, t, [s, a, _, j, _]) = y_graph();
        // SPF delay S->J is 2.0 (S-A-J). With a generous bound, the S merger
        // (SHR 0) wins over A (SHR 2) despite being longer.
        let sel = select_path(
            &g,
            &t,
            &spt_of(&g, &t),
            j,
            0.3,
            SelectionMode::FullTopology,
            &[],
        )
        .unwrap();
        assert_eq!(sel.spf_delay, 2.0);
        assert_eq!(sel.candidate.merger, s);
        assert!(sel.within_bound);
        let _ = a;
    }

    #[test]
    fn criterion_respects_tight_bound() {
        let (g, t, [_, a, _, j, _]) = y_graph();
        // Bound (1+0.1)*2.0 = 2.2 rules out the 2.5 path via S; A (2.0) wins.
        let sel = select_path(
            &g,
            &t,
            &spt_of(&g, &t),
            j,
            0.1,
            SelectionMode::FullTopology,
            &[],
        )
        .unwrap();
        assert_eq!(sel.candidate.merger, a);
        assert!(sel.within_bound);
    }

    #[test]
    fn fallback_when_no_candidate_fits_bound() {
        // Disconnect-ish: make every candidate exceed the bound by using a
        // tree that wanders. Tree: S-A(1)-M(1); J reaches tree only via M
        // with delay 10; SPF S->J = 10 + 2? Build explicitly:
        let mut g = Graph::with_nodes(4);
        let ids: Vec<_> = g.node_ids().collect();
        let [s, a, m, j] = [ids[0], ids[1], ids[2], ids[3]];
        g.add_link(s, a, 5.0).unwrap();
        g.add_link(a, m, 5.0).unwrap();
        g.add_link(m, j, 1.0).unwrap();
        g.add_link(s, j, 1.0).unwrap(); // J's SPF is direct: 1.0.
        let mut t = MulticastTree::new(&g, s).unwrap();
        t.attach_path(&Path::new(vec![m, a, s]));
        t.set_member(m, true).unwrap();
        // Remove the direct link from candidates by excluding nothing: the
        // direct S merger candidate has delay 1.0 and is fine. So instead
        // tighten: exclude S to force the long merger.
        let sel = select_path(
            &g,
            &t,
            &spt_of(&g, &t),
            j,
            0.0,
            SelectionMode::FullTopology,
            &[s],
        )
        .unwrap();
        assert_eq!(sel.candidate.merger, m);
        assert!(!sel.within_bound);
    }

    #[test]
    fn unreachable_node_errors() {
        let mut g = Graph::with_nodes(3);
        let ids: Vec<_> = g.node_ids().collect();
        g.add_link(ids[0], ids[1], 1.0).unwrap();
        let t = MulticastTree::new(&g, ids[0]).unwrap();
        assert!(matches!(
            select_path(
                &g,
                &t,
                &spt_of(&g, &t),
                ids[2],
                0.3,
                SelectionMode::FullTopology,
                &[]
            ),
            Err(SmrpError::NoFeasiblePath(_))
        ));
    }

    #[test]
    fn neighbor_query_finds_subset() {
        let (g, t, [_, a, _, j, _]) = y_graph();
        let full =
            enumerate_candidates(&g, &t, &spt_of(&g, &t), j, SelectionMode::FullTopology, &[]);
        let query = enumerate_candidates(
            &g,
            &t,
            &spt_of(&g, &t),
            j,
            SelectionMode::NeighborQuery,
            &[],
        );
        assert!(!query.is_empty());
        // Every query candidate's merger also appears in the full set.
        for c in &query {
            assert!(full.iter().any(|f| f.merger == c.merger));
        }
        // Neighbor A is on-tree: direct candidate.
        assert!(query
            .iter()
            .any(|c| c.merger == a && c.approach.hop_count() == 1));
    }

    #[test]
    fn excluded_nodes_are_not_candidates_or_relays() {
        let (g, t, [s, a, _, j, b]) = y_graph();
        let cands = enumerate_candidates(
            &g,
            &t,
            &spt_of(&g, &t),
            j,
            SelectionMode::FullTopology,
            &[a],
        );
        assert!(cands.iter().all(|c| c.merger != a));
        // S is still reachable via B.
        assert!(cands.iter().any(|c| c.merger == s));
        // Excluding B as well leaves only paths through A, which is banned.
        let cands = enumerate_candidates(
            &g,
            &t,
            &spt_of(&g, &t),
            j,
            SelectionMode::FullTopology,
            &[a, b],
        );
        assert!(cands.is_empty());
    }

    #[test]
    fn tie_breaking_is_deterministic() {
        // Two mergers with equal SHR and equal delay: lower id must win.
        let mut g = Graph::with_nodes(4);
        let ids: Vec<_> = g.node_ids().collect();
        let [s, a, b, j] = [ids[0], ids[1], ids[2], ids[3]];
        g.add_link(s, a, 1.0).unwrap();
        g.add_link(s, b, 1.0).unwrap();
        g.add_link(a, j, 1.0).unwrap();
        g.add_link(b, j, 1.0).unwrap();
        g.add_link(s, j, 2.0).unwrap();
        let mut t = MulticastTree::new(&g, s).unwrap();
        t.attach_path(&Path::new(vec![a, s]));
        t.set_member(a, true).unwrap();
        t.attach_path(&Path::new(vec![b, s]));
        t.set_member(b, true).unwrap();
        let sel = select_path(
            &g,
            &t,
            &spt_of(&g, &t),
            j,
            1.0,
            SelectionMode::FullTopology,
            &[],
        )
        .unwrap();
        // S has SHR 0 and total delay 2.0 == via-A/B (1+1); S also ties on
        // SHR? No: S SHR=0 < A/B SHR=1, so S wins by SHR despite equal delay.
        assert_eq!(sel.candidate.merger, s);
        // Force the A/B tie by excluding S.
        let sel = select_path(
            &g,
            &t,
            &spt_of(&g, &t),
            j,
            1.0,
            SelectionMode::FullTopology,
            &[s],
        )
        .unwrap();
        assert_eq!(sel.candidate.merger, a, "lower node id wins the tie");
    }
}
