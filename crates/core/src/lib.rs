#![warn(missing_docs)]

//! SMRP — the Survivable Multicast Routing Protocol (Wu & Shin, DSN 2005).
//!
//! This crate implements the paper's core contribution: a multicast
//! tree-construction algorithm that deliberately *reduces path sharing*
//! among members so that, when a persistent failure disconnects a receiver,
//! a short **local detour** to a still-connected on-tree neighbor restores
//! service quickly — instead of waiting for unicast routing to reconverge
//! and re-joining along a brand-new shortest path (the **global detour** of
//! SPF-based protocols such as PIM/MOSPF).
//!
//! # Components
//!
//! * [`tree`] — the shared multicast tree representation with the paper's
//!   per-node state: subtree member counts `N_R` and the sharing metric
//!   `SHR(S,R)` (Eqs. 1–2).
//! * [`select`] — the join path-selection criterion of §3.2.2
//!   (min-`SHR` merger node subject to the `D_thresh` delay bound), in both
//!   full-topology and neighbor-query (§3.3.1) modes.
//! * [`session`] — [`SmrpSession`]: incremental join/leave plus the
//!   tree-reshaping procedure of §3.2.3 (Conditions I and II).
//! * [`spf`] — the SPF baseline ([`SpfSession`]): joins along unicast
//!   shortest paths, exactly what PIM-style protocols build.
//! * [`recovery`] — the failure/recovery engine of §4: local-detour and
//!   global-detour restoration paths and the recovery-distance metric
//!   `RD_R`, including the worst-case failure model of §4.3.1.
//! * [`paper`] — executable versions of the paper's worked examples
//!   (Figures 1, 4 and 5), reused by tests, examples and documentation.
//!
//! # Quick start
//!
//! ```
//! use smrp_core::{SmrpConfig, SmrpSession};
//! use smrp_core::recovery::{self, DetourKind};
//! use smrp_net::waxman::WaxmanConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = WaxmanConfig::new(60).alpha(0.25).seed(1).generate()?.into_graph();
//! let source = graph.node_ids().next().unwrap();
//! let mut session = SmrpSession::new(&graph, source, SmrpConfig::default())?;
//!
//! // Join a few receivers; SMRP picks low-sharing merger nodes.
//! for n in graph.node_ids().skip(10).take(5) {
//!     session.join(n)?;
//! }
//!
//! // Fail the worst-case link for one member and recover locally.
//! let member = session.members().next().unwrap();
//! let failed = recovery::worst_case_failure_for(&graph, session.tree(), member).unwrap();
//! let scenario = smrp_net::FailureScenario::link(failed);
//! let rec = recovery::recover(&graph, session.tree(), &scenario, member, DetourKind::Local)
//!     .expect("member has a local detour");
//! assert!(rec.recovery_distance() >= 0.0);
//! # Ok(())
//! # }
//! ```

pub mod audit;
pub mod backup;
pub mod error;
pub mod paper;
pub mod recovery;
pub mod select;
pub mod session;
pub mod spf;
pub mod steiner;
pub mod tree;
pub mod viz;

pub use error::SmrpError;
pub use select::{JoinCandidate, SelectionMode};
pub use session::{JoinOutcome, ReshapeOutcome, SmrpConfig, SmrpSession};
pub use spf::SpfSession;
pub use steiner::SteinerSession;
pub use tree::MulticastTree;
