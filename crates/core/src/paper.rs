//! Executable versions of the paper's worked examples.
//!
//! The paper illustrates SMRP with small concrete topologies (Figures 1, 2,
//! 4 and 5). This module reconstructs them with link delays chosen to
//! satisfy every constraint stated in the text, so the narrative becomes a
//! machine-checked specification:
//!
//! * [`figure1`] — the 5-node motivation example: after `L_AD` fails,
//!   member `D`'s global detour is `D→B→S` (delay 3) while the local detour
//!   `D→C` has recovery distance 2.
//! * [`figure2_smrp_tree`] — the disjoint-tree variant: with a relaxed
//!   `D_thresh`, SMRP routes `D` via `B`, so a failure of `L_SA` leaves `D`
//!   connected and `C` recovers through its neighbor `D`.
//! * [`figure4`] — the 8-node join walkthrough: `E` joins trivially along
//!   its shortest path, `G` prefers the unshared `G→B→S` over the shorter
//!   `G→F→D→A→S`, and `F` falls back to `F→D→A→S` because both low-sharing
//!   alternatives violate the `D_thresh = 0.3` bound.
//! * Figure 5 (reshaping) follows from [`figure4`]: `F`'s admission raises
//!   `SHR(S,D)` from 2 to 4 and triggers `E`'s re-selection onto
//!   `E→C→A→S` (merger `A`). Covered by tests and the
//!   `paper_walkthrough` example.
//!
//! All functions panic only on internal inconsistencies — the topologies
//! are fixed constants.

use smrp_net::{Graph, NodeId, Path};

use crate::session::{SmrpConfig, SmrpSession};
use crate::tree::MulticastTree;

/// Node handles for the Figure 1/2 topology.
#[derive(Debug, Clone, Copy)]
pub struct Figure1Nodes {
    /// Multicast source.
    pub s: NodeId,
    /// Relay adjacent to the source.
    pub a: NodeId,
    /// Off-tree node on the global detour.
    pub b: NodeId,
    /// Member C.
    pub c: NodeId,
    /// Member D.
    pub d: NodeId,
}

/// Builds the Figure 1 graph.
///
/// Delays: `S-A = 1`, `A-C = 1`, `A-D = 1`, `C-D = 2`, `D-B = 1`,
/// `B-S = 2`. These satisfy the paper's narrative: the SPF tree reaches
/// both members through `A`; after `L_AD` fails the new shortest path for
/// `D` is `D→B→S` (delay 3) and the local detour `D→C` has `RD_D = 2`.
pub fn figure1_graph() -> (Graph, Figure1Nodes) {
    let mut g = Graph::with_nodes(5);
    let ids: Vec<_> = g.node_ids().collect();
    let n = Figure1Nodes {
        s: ids[0],
        a: ids[1],
        b: ids[2],
        c: ids[3],
        d: ids[4],
    };
    g.add_link(n.s, n.a, 1.0).expect("fresh link");
    g.add_link(n.a, n.c, 1.0).expect("fresh link");
    g.add_link(n.a, n.d, 1.0).expect("fresh link");
    g.add_link(n.c, n.d, 2.0).expect("fresh link");
    g.add_link(n.d, n.b, 1.0).expect("fresh link");
    g.add_link(n.b, n.s, 2.0).expect("fresh link");
    (g, n)
}

/// Builds Figure 1(a): the SPF multicast tree `S→A→{C,D}` with members
/// `C` and `D`.
pub fn figure1() -> (Graph, MulticastTree, Figure1Nodes) {
    let (g, n) = figure1_graph();
    let mut t = MulticastTree::new(&g, n.s).expect("source exists");
    t.attach_path(&Path::new(vec![n.c, n.a, n.s]));
    t.set_member(n.c, true).expect("C is on-tree");
    t.attach_path(&Path::new(vec![n.d, n.a]));
    t.set_member(n.d, true).expect("D is on-tree");
    (g, t, n)
}

/// Builds the Figure 2(a) tree by running SMRP with a relaxed delay bound
/// (`D_thresh = 0.5`) on the Figure 1 graph: `C` joins via `A`, then `D`
/// prefers the fully disjoint `D→B→S` (merger `S`, `SHR = 0`).
///
/// Returns the session so callers can exercise recovery on it.
pub fn figure2_smrp_tree(graph: &Graph, nodes: Figure1Nodes) -> SmrpSession<'_> {
    let config = SmrpConfig {
        d_thresh: 0.5,
        ..SmrpConfig::default()
    };
    let mut sess = SmrpSession::new(graph, nodes.s, config).expect("valid config");
    sess.join(nodes.c).expect("C can join");
    sess.join(nodes.d).expect("D can join");
    sess
}

/// Node handles for the Figure 4/5 topology.
#[derive(Debug, Clone, Copy)]
pub struct Figure4Nodes {
    /// Multicast source.
    pub s: NodeId,
    /// Relay between the source and `D`/`C`.
    pub a: NodeId,
    /// Relay on `G`'s unshared path.
    pub b: NodeId,
    /// Relay used by `E`'s reshaped path.
    pub c: NodeId,
    /// Relay carrying `E` and later `F`.
    pub d: NodeId,
    /// First member to join.
    pub e: NodeId,
    /// Third member to join.
    pub f: NodeId,
    /// Second member to join.
    pub g: NodeId,
}

/// Builds the Figure 4 graph.
///
/// Delays: `S-A = 1`, `A-D = 1`, `D-E = 1`, `A-C = 1`, `C-E = 1.5`,
/// `G-F = 1`, `F-D = 1`, `G-B = 2.2`, `B-S = 2.5`, `F-B = 3`.
///
/// These reproduce the walkthrough with `D_thresh = 0.3`:
///
/// * `E`'s shortest path is `E→D→A→S` (3.0) and, joining an empty tree, it
///   takes it — giving `SHR(S,D) = 2` as annotated in Figure 4(a);
/// * `G`'s shortest path is `G→F→D→A→S` (4.0) but it selects `G→B→S`
///   (4.7 ≤ 1.3·4.0), merging at `S` with `SHR = 0`;
/// * `F`'s shortest path is `F→D→A→S` (3.0); the lower-sharing candidates
///   `F→B→S` (5.5) and `F→G→B→S` (5.7) both exceed `1.3·3.0 = 3.9`, so `F`
///   merges at `D` — raising `SHR(S,D)` to 4 as in Figure 4(d);
/// * `E`'s reshaped path `E→C→A→S` (3.5 ≤ 3.9) then merges at `A`, whose
///   adjusted `SHR` beats `D`'s — Figure 5.
pub fn figure4_graph() -> (Graph, Figure4Nodes) {
    let mut gr = Graph::with_nodes(8);
    let ids: Vec<_> = gr.node_ids().collect();
    let n = Figure4Nodes {
        s: ids[0],
        a: ids[1],
        b: ids[2],
        c: ids[3],
        d: ids[4],
        e: ids[5],
        f: ids[6],
        g: ids[7],
    };
    gr.add_link(n.s, n.a, 1.0).expect("fresh link");
    gr.add_link(n.a, n.d, 1.0).expect("fresh link");
    gr.add_link(n.d, n.e, 1.0).expect("fresh link");
    gr.add_link(n.a, n.c, 1.0).expect("fresh link");
    gr.add_link(n.c, n.e, 1.5).expect("fresh link");
    gr.add_link(n.g, n.f, 1.0).expect("fresh link");
    gr.add_link(n.f, n.d, 1.0).expect("fresh link");
    gr.add_link(n.g, n.b, 2.2).expect("fresh link");
    gr.add_link(n.b, n.s, 2.5).expect("fresh link");
    gr.add_link(n.f, n.b, 3.0).expect("fresh link");
    (gr, n)
}

/// Runs the Figure 4 join sequence (`E`, then `G`, then `F`) with
/// `D_thresh = 0.3` and reshaping disabled, returning the session in the
/// state of Figure 4(d).
pub fn figure4() -> (Graph, Figure4Nodes, SmrpSession<'static>) {
    // The graph is leaked to give the session a 'static borrow; the worked
    // examples are tiny constants used by tests/examples, so the one-off
    // allocation is intentional.
    let (graph, nodes) = figure4_graph();
    let graph: &'static Graph = Box::leak(Box::new(graph));
    let config = SmrpConfig {
        d_thresh: 0.3,
        auto_reshape: false,
        ..SmrpConfig::default()
    };
    let mut sess = SmrpSession::new(graph, nodes.s, config).expect("valid config");
    sess.join(nodes.e).expect("E joins");
    sess.join(nodes.g).expect("G joins");
    sess.join(nodes.f).expect("F joins");
    (graph.clone(), nodes, sess)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::{self, DetourKind};
    use crate::select::SelectionMode;
    use smrp_net::FailureScenario;

    #[test]
    fn figure1_narrative_holds() {
        let (g, t, n) = figure1();
        t.validate(&g).unwrap();
        assert_eq!(t.shr(n.c), 3, "SHR(S,C) = 2 + 1 as computed in §3.1");
        let l_ad = g.link_between(n.a, n.d).unwrap();
        let scenario = FailureScenario::link(l_ad);
        let local = recovery::recover(&g, &t, &scenario, n.d, DetourKind::Local).unwrap();
        let global = recovery::recover(&g, &t, &scenario, n.d, DetourKind::Global).unwrap();
        assert_eq!(local.recovery_distance(), 2.0, "RD_D = 2 via D->C");
        assert_eq!(global.restoration_path().nodes(), &[n.d, n.b, n.s]);
        assert_eq!(global.recovery_distance(), 3.0);
    }

    #[test]
    fn figure2_disjoint_tree_and_neighbor_recovery() {
        let (g, n) = figure1_graph();
        let sess = figure2_smrp_tree(&g, n);
        let t = sess.tree();
        t.validate(&g).unwrap();
        // D's path is S->B->D: fully disjoint from C's S->A->C.
        assert_eq!(t.path_from_source(n.d).unwrap().nodes(), &[n.s, n.b, n.d]);
        let pc = t.path_from_source(n.c).unwrap();
        let pd = t.path_from_source(n.d).unwrap();
        let lc = pc.links(&g);
        assert!(pd.links(&g).iter().all(|l| !lc.contains(l)));

        // Figure 2(b): when L_SA fails only C is disconnected, and it
        // recovers by connecting to its neighbor D.
        let l_sa = g.link_between(n.s, n.a).unwrap();
        let scenario = FailureScenario::link(l_sa);
        let affected = recovery::affected_members(&g, t, &scenario);
        assert_eq!(affected, vec![n.c], "at most one member is disrupted");
        let rec = recovery::recover(&g, t, &scenario, n.c, DetourKind::Local).unwrap();
        assert_eq!(rec.attach(), n.d);
        assert_eq!(rec.recovery_distance(), 2.0);
    }

    #[test]
    fn figure4_join_sequence_matches_paper() {
        let (g, n, sess) = figure4();
        let t = sess.tree();
        t.validate(&g).unwrap();

        // E joined along its shortest path E->D->A->S.
        assert_eq!(
            t.path_from_source(n.e).unwrap().nodes(),
            &[n.s, n.a, n.d, n.e]
        );
        // G selected G->B->S (merger S) over the shorter G->F->D->A->S.
        assert_eq!(t.path_from_source(n.g).unwrap().nodes(), &[n.s, n.b, n.g]);
        // F selected F->D->A->S (merger D).
        assert_eq!(
            t.path_from_source(n.f).unwrap().nodes(),
            &[n.s, n.a, n.d, n.f]
        );
        // Figure 4(d): SHR(S,D) rose from 2 to 4 after F's admission.
        assert_eq!(t.shr(n.d), 4);
    }

    #[test]
    fn figure4_intermediate_shr_annotation() {
        // After E alone, SHR(S,D) = 2 as printed next to D in Figure 4(a).
        let (g, n) = figure4_graph();
        let config = SmrpConfig {
            auto_reshape: false,
            ..SmrpConfig::default()
        };
        let mut sess = SmrpSession::new(&g, n.s, config).unwrap();
        sess.join(n.e).unwrap();
        assert_eq!(sess.tree().shr(n.d), 2);
        // And G's candidate table: merging at D would cost total 4.0 while
        // the chosen S merger costs 4.7.
        let cands = crate::select::enumerate_candidates(
            &g,
            sess.tree(),
            sess.spt(),
            n.g,
            SelectionMode::FullTopology,
            &[],
        );
        let via_d = cands.iter().find(|c| c.merger == n.d).unwrap();
        assert!((via_d.total_delay - 4.0).abs() < 1e-9);
        let via_s = cands.iter().find(|c| c.merger == n.s).unwrap();
        assert!((via_s.total_delay - 4.7).abs() < 1e-9);
    }

    #[test]
    fn figure5_reshape_moves_e_to_merger_a() {
        let (g, n, mut sess) = figure4();
        // Condition I at E: its SHR grew from 3 (at join) to 5 after F.
        assert_eq!(sess.tree().shr(n.e), 5);
        let outcome = sess.reshape_member(n.e).unwrap();
        match outcome {
            crate::session::ReshapeOutcome::Switched {
                old_merger,
                new_merger,
            } => {
                assert_eq!(old_merger, n.d);
                assert_eq!(new_merger, n.a);
            }
            other => panic!("expected a switch, got {other:?}"),
        }
        // Figure 5(d): E now reaches the source via C and A.
        assert_eq!(
            sess.tree().path_from_source(n.e).unwrap().nodes(),
            &[n.s, n.a, n.c, n.e]
        );
        sess.tree().validate(&g).unwrap();
        // And the tree is quiescent afterwards.
        assert_eq!(sess.reshape_sweep(), 0);
    }

    #[test]
    fn figure5_triggers_automatically_with_auto_reshape() {
        let (g, n) = figure4_graph();
        let config = SmrpConfig {
            d_thresh: 0.3,
            reshape_threshold: 1,
            auto_reshape: true,
            selection: SelectionMode::FullTopology,
        };
        let mut sess = SmrpSession::new(&g, n.s, config).unwrap();
        sess.join(n.e).unwrap();
        sess.join(n.g).unwrap();
        let out = sess.join(n.f).unwrap();
        assert_eq!(out.reshaped, vec![n.e], "F's admission reshapes E");
        assert_eq!(
            sess.tree().path_from_source(n.e).unwrap().nodes(),
            &[n.s, n.a, n.c, n.e]
        );
    }

    #[test]
    fn figure4_spf_distances_are_as_designed() {
        let (g, n) = figure4_graph();
        let d = |x, y| smrp_net::dijkstra::distance(&g, x, y).unwrap();
        assert!((d(n.s, n.e) - 3.0).abs() < 1e-9);
        assert!((d(n.s, n.g) - 4.0).abs() < 1e-9);
        assert!((d(n.s, n.f) - 3.0).abs() < 1e-9);
    }
}
