//! Preplanned backup paths (the proactive alternative from related work).
//!
//! §2 of the paper contrasts SMRP's reactive local detour with Han & Shin's
//! *dependable real-time connections*: a primary channel plus a preplanned
//! backup channel that is activated instantly on failure — no search, but
//! standing resource overhead. This module implements that scheme on top of
//! the multicast tree so the trade-off can be measured:
//!
//! * [`plan_backups`] computes, for every member, a backup path to the
//!   source that is maximally disjoint from the member's primary tree path
//!   (link-disjoint when the topology allows it, falling back to the least
//!   overlapping alternative otherwise);
//! * [`activate`] checks whether a member's backup survives a failure
//!   scenario and returns the activation;
//! * [`standing_overhead`] quantifies the extra resources the backups
//!   reserve while no failure is present.

use smrp_net::dijkstra::{self, Constraints};
use smrp_net::{FailureScenario, Graph, LinkId, NodeId, Path};

use crate::tree::MulticastTree;

/// A member's preplanned backup path.
#[derive(Debug, Clone, PartialEq)]
pub struct BackupPlan {
    /// The protected member.
    pub member: NodeId,
    /// The member's primary on-tree path (source → member).
    pub primary: Path,
    /// The preplanned backup path (member → source).
    pub backup: Path,
    /// Whether the backup is fully link-disjoint from the primary.
    pub link_disjoint: bool,
}

impl BackupPlan {
    /// Links of the backup path that are not part of `tree` — the
    /// resources the plan reserves in advance.
    pub fn reserved_links(&self, graph: &Graph, tree: &MulticastTree) -> Vec<LinkId> {
        let tree_links = tree.links(graph);
        self.backup
            .links(graph)
            .into_iter()
            .filter(|l| !tree_links.contains(l))
            .collect()
    }
}

/// Computes a backup plan for one member.
///
/// Tries a fully link-disjoint shortest path first (interior nodes of the
/// primary are also avoided when possible, protecting against node
/// failures); if none exists, falls back to the plain post-exclusion
/// shortest path with only the primary's links removed; if even that fails
/// the member is unprotectable and `None` is returned.
pub fn plan_backup(graph: &Graph, tree: &MulticastTree, member: NodeId) -> Option<BackupPlan> {
    let primary = tree.path_from_source(member)?;
    let source = tree.source();
    let primary_links = primary.links(graph);
    // Interior nodes of the primary (everything but the two endpoints).
    let interior: Vec<NodeId> = primary.nodes()[1..primary.nodes().len() - 1].to_vec();

    // Strongest protection first: node- and link-disjoint.
    let strong = dijkstra::shortest_path_constrained(
        graph,
        member,
        source,
        Constraints {
            forbidden_nodes: &interior,
            forbidden_links: &primary_links,
            ..Constraints::default()
        },
    );
    if let Some(backup) = strong {
        return Some(BackupPlan {
            member,
            primary,
            backup,
            link_disjoint: true,
        });
    }
    // Fall back to link-disjoint only.
    let weak = dijkstra::shortest_path_constrained(
        graph,
        member,
        source,
        Constraints {
            forbidden_links: &primary_links,
            ..Constraints::default()
        },
    );
    if let Some(backup) = weak {
        let disjoint = backup
            .links(graph)
            .iter()
            .all(|l| !primary_links.contains(l));
        return Some(BackupPlan {
            member,
            primary,
            backup,
            link_disjoint: disjoint,
        });
    }
    None
}

/// Plans backups for every member of the tree; members with no alternative
/// connectivity are omitted.
///
/// # Example
///
/// ```
/// use smrp_core::{backup, paper};
///
/// let (graph, tree, _) = paper::figure1();
/// let plans = backup::plan_backups(&graph, &tree);
/// assert_eq!(plans.len(), 2);
/// assert!(plans.iter().all(|p| p.link_disjoint));
/// ```
pub fn plan_backups(graph: &Graph, tree: &MulticastTree) -> Vec<BackupPlan> {
    tree.members()
        .filter_map(|m| plan_backup(graph, tree, m))
        .collect()
}

/// Outcome of activating a backup under a failure.
#[derive(Debug, Clone, PartialEq)]
pub enum Activation {
    /// The backup survives the failure and carries traffic immediately.
    Switched {
        /// Delay of the backup path (the member's new end-to-end delay).
        backup_delay: f64,
    },
    /// The failure hit the backup too; reactive recovery is required.
    BackupDead,
    /// The member's primary was not affected; no activation needed.
    NotNeeded,
}

/// Activates `plan` under `scenario`.
pub fn activate(graph: &Graph, plan: &BackupPlan, scenario: &FailureScenario) -> Activation {
    if scenario.path_usable(graph, plan.primary.nodes()) {
        return Activation::NotNeeded;
    }
    if scenario.path_usable(graph, plan.backup.nodes()) {
        Activation::Switched {
            backup_delay: plan.backup.delay(graph),
        }
    } else {
        Activation::BackupDead
    }
}

/// Total cost of the links all `plans` reserve beyond the tree itself —
/// the standing price of proactive protection.
pub fn standing_overhead(graph: &Graph, tree: &MulticastTree, plans: &[BackupPlan]) -> f64 {
    let mut reserved: Vec<LinkId> = plans
        .iter()
        .flat_map(|p| p.reserved_links(graph, tree))
        .collect();
    reserved.sort_unstable();
    reserved.dedup();
    reserved.into_iter().map(|l| graph.link(l).cost()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use smrp_net::Graph;

    #[test]
    fn figure1_members_get_disjoint_backups() {
        let (g, tree, n) = paper::figure1();
        let plans = plan_backups(&g, &tree);
        assert_eq!(plans.len(), 2);
        for plan in &plans {
            assert!(plan.link_disjoint, "{} backup overlaps", plan.member);
            assert_eq!(plan.backup.source(), plan.member);
            assert_eq!(plan.backup.target(), n.s);
            assert!(plan.backup.validate(&g).is_ok());
        }
    }

    #[test]
    fn activation_switches_on_primary_failure() {
        let (g, tree, n) = paper::figure1();
        let plan = plan_backup(&g, &tree, n.d).unwrap();
        let l_ad = g.link_between(n.a, n.d).unwrap();
        let scenario = FailureScenario::link(l_ad);
        match activate(&g, &plan, &scenario) {
            Activation::Switched { backup_delay } => {
                // D's disjoint backup is D->B->S with delay 3.
                assert_eq!(backup_delay, 3.0);
            }
            other => panic!("expected a switch, got {other:?}"),
        }
    }

    #[test]
    fn unaffected_member_needs_no_activation() {
        let (g, tree, n) = paper::figure1();
        let plan = plan_backup(&g, &tree, n.c).unwrap();
        let l_ad = g.link_between(n.a, n.d).unwrap();
        assert_eq!(
            activate(&g, &plan, &FailureScenario::link(l_ad)),
            Activation::NotNeeded
        );
    }

    #[test]
    fn dead_backup_is_reported() {
        let (g, tree, n) = paper::figure1();
        let plan = plan_backup(&g, &tree, n.d).unwrap();
        // Kill both the primary (A-D) and the backup's B node.
        let mut scenario = FailureScenario::link(g.link_between(n.a, n.d).unwrap());
        scenario.fail_node(n.b);
        assert_eq!(activate(&g, &plan, &scenario), Activation::BackupDead);
    }

    #[test]
    fn no_backup_on_a_tree_topology() {
        // A pure tree graph offers no disjoint alternative at all.
        let mut g = Graph::with_nodes(3);
        let ids: Vec<_> = g.node_ids().collect();
        g.add_link(ids[0], ids[1], 1.0).unwrap();
        g.add_link(ids[1], ids[2], 1.0).unwrap();
        let mut tree = crate::MulticastTree::new(&g, ids[0]).unwrap();
        tree.attach_path(&Path::new(vec![ids[2], ids[1], ids[0]]));
        tree.set_member(ids[2], true).unwrap();
        assert!(plan_backup(&g, &tree, ids[2]).is_none());
        assert!(plan_backups(&g, &tree).is_empty());
    }

    #[test]
    fn standing_overhead_counts_reserved_links_once() {
        let (g, tree, _) = paper::figure1();
        let plans = plan_backups(&g, &tree);
        let overhead = standing_overhead(&g, &tree, &plans);
        // C's backup C->D->B->S and D's backup D->B->S share D-B and B-S:
        // reserved links are {C-D (2), D-B (1), B-S (2)} = 5.
        assert_eq!(overhead, 5.0);
    }

    #[test]
    fn off_tree_node_has_no_plan() {
        let (g, tree, n) = paper::figure1();
        assert!(plan_backup(&g, &tree, n.b).is_none());
    }
}
