//! Failure recovery: local vs global detours and the recovery distance.
//!
//! When a persistent failure disconnects part of the multicast tree, each
//! disconnected member restores service by locating a restoration path
//! around the faulty component (§3.1, §4.2):
//!
//! * **Local detour** — the SMRP recovery strategy: connect to the
//!   *nearest* on-tree node that is still connected to the source, over any
//!   non-faulty route. The recovery distance `RD_R` is the delay of that
//!   member-to-attach-point segment ("the distance between the disconnected
//!   member R and its local recovery on-tree node", §4.2; Figure 1's
//!   `RD_D = 2` for restoration path `D → C`).
//! * **Global detour** — what SPF-based protocols do after unicast routing
//!   reconverges: re-join along the new shortest path to the source. The
//!   restoration path is the prefix of that new path up to the first
//!   still-connected on-tree node (PIM join propagation stops there), and
//!   `RD_R` is its delay.
//!
//! The worst-case failure model of §4.3.1 — "the link closest to the source
//! node on R's multicast path" — is provided by [`worst_case_failure_for`].

use std::collections::HashSet;

use smrp_net::dijkstra::{self, Constraints};
use smrp_net::{FailureScenario, Graph, LinkId, NodeId, Path};

use crate::tree::MulticastTree;

/// Which restoration strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetourKind {
    /// Connect to the nearest still-connected on-tree node (SMRP).
    Local,
    /// Re-join along the post-reconvergence unicast shortest path
    /// (PIM/MOSPF baseline).
    Global,
}

/// Why a recovery attempt produced no restoration path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryError {
    /// The member's service was never disrupted by this scenario.
    NotAffected(NodeId),
    /// The member itself failed, or no non-faulty route to the surviving
    /// tree exists.
    Unrecoverable(NodeId),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::NotAffected(n) => {
                write!(f, "member {n} is not affected by the failure")
            }
            RecoveryError::Unrecoverable(n) => {
                write!(
                    f,
                    "member {n} has no non-faulty route to the surviving tree"
                )
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// A computed restoration path for one disconnected member.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovery {
    member: NodeId,
    kind: DetourKind,
    restoration_path: Path,
    attach: NodeId,
    recovery_distance: f64,
    new_links: Vec<LinkId>,
    new_end_to_end_delay: f64,
}

impl Recovery {
    /// The recovered member.
    pub fn member(&self) -> NodeId {
        self.member
    }

    /// Which strategy produced this recovery.
    pub fn kind(&self) -> DetourKind {
        self.kind
    }

    /// The restoration path from the member to its recovery on-tree node.
    pub fn restoration_path(&self) -> &Path {
        &self.restoration_path
    }

    /// The still-connected on-tree node the member re-attaches to.
    pub fn attach(&self) -> NodeId {
        self.attach
    }

    /// `RD_R`: delay of the restoration path (§4.2).
    pub fn recovery_distance(&self) -> f64 {
        self.recovery_distance
    }

    /// Links of the restoration path that were not already part of the
    /// (surviving) multicast tree — the state that must be newly installed.
    pub fn new_links(&self) -> &[LinkId] {
        &self.new_links
    }

    /// The member's end-to-end delay after re-attachment (tree delay to the
    /// attach point plus the restoration path).
    pub fn new_end_to_end_delay(&self) -> f64 {
        self.new_end_to_end_delay
    }
}

/// On-tree nodes still connected to the source through surviving tree
/// links, in DFS order from the source.
///
/// Returns an empty vector if the source itself failed.
pub fn surviving_connected(
    graph: &Graph,
    tree: &MulticastTree,
    scenario: &FailureScenario,
) -> Vec<NodeId> {
    let mut out = Vec::new();
    if !scenario.node_usable(tree.source()) {
        return out;
    }
    let mut stack = vec![tree.source()];
    while let Some(u) = stack.pop() {
        out.push(u);
        for &c in tree.children(u) {
            if !scenario.node_usable(c) {
                continue;
            }
            let Some(l) = graph.link_between(u, c) else {
                continue;
            };
            if scenario.link_usable(graph, l) {
                stack.push(c);
            }
        }
    }
    out
}

/// Per-node mask of *physical* reachability from `source` under
/// `scenario`: `true` when any route of usable links and nodes connects the
/// node to the source, on-tree or not.
///
/// This is the recoverability oracle: an affected member with a `false`
/// entry is partitioned from the source and no protocol can restore it; a
/// usable member with a `true` entry must be restorable by some detour.
pub fn reachable_from_source(
    graph: &Graph,
    source: NodeId,
    scenario: &FailureScenario,
) -> Vec<bool> {
    let mut mask = vec![false; graph.node_count()];
    if !scenario.node_usable(source) {
        return mask;
    }
    mask[source.index()] = true;
    let mut stack = vec![source];
    while let Some(u) = stack.pop() {
        for &(v, l) in graph.adjacency(u) {
            if mask[v.index()] || !scenario.node_usable(v) || !scenario.link_usable(graph, l) {
                continue;
            }
            mask[v.index()] = true;
            stack.push(v);
        }
    }
    mask
}

/// Members whose tree path to the source was broken by `scenario` (the
/// member node itself may also have failed; such members are included).
pub fn affected_members(
    graph: &Graph,
    tree: &MulticastTree,
    scenario: &FailureScenario,
) -> Vec<NodeId> {
    let connected = surviving_connected(graph, tree, scenario);
    let mut mask = vec![false; graph.node_count()];
    for n in &connected {
        mask[n.index()] = true;
    }
    tree.members().filter(|m| !mask[m.index()]).collect()
}

/// The worst-case failure for `member` (§4.3.1): the tree link incident to
/// the source on the member's multicast path, whose loss disables the
/// largest portion of the member's path.
///
/// Returns `None` for off-tree nodes or a member sitting directly at the
/// source.
pub fn worst_case_failure_for(
    graph: &Graph,
    tree: &MulticastTree,
    member: NodeId,
) -> Option<LinkId> {
    let path = tree.path_from_source(member)?;
    let nodes = path.nodes();
    if nodes.len() < 2 {
        return None;
    }
    graph.link_between(nodes[0], nodes[1])
}

/// Computes a restoration path for `member` under `scenario`.
///
/// # Errors
///
/// * [`RecoveryError::NotAffected`] — the member is still connected;
/// * [`RecoveryError::Unrecoverable`] — the member failed or no non-faulty
///   route to the surviving tree exists.
///
/// # Example
///
/// Figure 1 of the paper: when `L_AD` fails, member `D`'s local detour is
/// `D → C` with recovery distance 2.
///
/// ```
/// use smrp_core::paper;
/// use smrp_core::recovery::{self, DetourKind};
/// use smrp_net::FailureScenario;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (graph, tree, n) = paper::figure1();
/// let failed = graph.link_between(n.a, n.d).expect("figure link");
/// let scenario = FailureScenario::link(failed);
/// let rec = recovery::recover(&graph, &tree, &scenario, n.d, DetourKind::Local)?;
/// assert_eq!(rec.attach(), n.c);
/// assert_eq!(rec.recovery_distance(), 2.0);
/// # Ok(())
/// # }
/// ```
pub fn recover(
    graph: &Graph,
    tree: &MulticastTree,
    scenario: &FailureScenario,
    member: NodeId,
    kind: DetourKind,
) -> Result<Recovery, RecoveryError> {
    if !scenario.node_usable(member) {
        return Err(RecoveryError::Unrecoverable(member));
    }
    let connected = surviving_connected(graph, tree, scenario);
    let mut mask = vec![false; graph.node_count()];
    for n in &connected {
        mask[n.index()] = true;
    }
    if mask[member.index()] {
        return Err(RecoveryError::NotAffected(member));
    }

    let constraints = Constraints::avoiding_failures(scenario);
    let restoration = match kind {
        DetourKind::Local => {
            dijkstra::shortest_path_to_any(graph, member, constraints, |n| mask[n.index()])
                .ok_or(RecoveryError::Unrecoverable(member))?
        }
        DetourKind::Global => {
            let spf =
                dijkstra::shortest_path_constrained(graph, member, tree.source(), constraints)
                    .ok_or(RecoveryError::Unrecoverable(member))?;
            // PIM join propagation stops at the first still-connected
            // on-tree router along the new unicast path.
            let nodes = spf.nodes();
            let cut = nodes
                .iter()
                .position(|n| mask[n.index()])
                .expect("path ends at the source, which is connected");
            Path::new(nodes[..=cut].to_vec())
        }
    };

    let attach = restoration.target();
    let recovery_distance = restoration.delay(graph);
    // Links the restoration path must newly establish: everything except
    // tree links that are still usable. Failed tree links drop out of the
    // set up front (they can no longer carry traffic even if the path
    // could somehow name them), and hashing makes the filter O(path
    // length) instead of a quadratic scan over the tree's link list.
    let usable_tree_links: HashSet<LinkId> = tree
        .links(graph)
        .into_iter()
        .filter(|&l| scenario.link_usable(graph, l))
        .collect();
    let new_links: Vec<LinkId> = restoration
        .links(graph)
        .into_iter()
        .filter(|l| !usable_tree_links.contains(l))
        .collect();
    let attach_delay = tree
        .delay_to(graph, attach)
        .expect("attach point is connected to the source");
    Ok(Recovery {
        member,
        kind,
        restoration_path: restoration,
        attach,
        recovery_distance,
        new_links,
        new_end_to_end_delay: attach_delay + recovery_distance,
    })
}

/// Convenience: recovery distances of both strategies for one member.
///
/// # Errors
///
/// Propagates the first strategy error ([`RecoveryError`]).
pub fn compare_detours(
    graph: &Graph,
    tree: &MulticastTree,
    scenario: &FailureScenario,
    member: NodeId,
) -> Result<(Recovery, Recovery), RecoveryError> {
    let local = recover(graph, tree, scenario, member, DetourKind::Local)?;
    let global = recover(graph, tree, scenario, member, DetourKind::Global)?;
    Ok((local, global))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smrp_net::Path as NetPath;

    /// Figure 1(a): tree S-A-{C,D}, members C and D.
    fn figure1() -> (Graph, MulticastTree, [NodeId; 5]) {
        let mut g = Graph::with_nodes(5);
        let ids: Vec<_> = g.node_ids().collect();
        let [s, a, b, c, d] = [ids[0], ids[1], ids[2], ids[3], ids[4]];
        g.add_link(s, a, 1.0).unwrap();
        g.add_link(a, c, 1.0).unwrap();
        g.add_link(a, d, 1.0).unwrap();
        g.add_link(c, d, 2.0).unwrap();
        g.add_link(d, b, 1.0).unwrap();
        g.add_link(b, s, 2.0).unwrap();
        let mut t = MulticastTree::new(&g, s).unwrap();
        t.attach_path(&NetPath::new(vec![c, a, s]));
        t.set_member(c, true).unwrap();
        t.attach_path(&NetPath::new(vec![d, a]));
        t.set_member(d, true).unwrap();
        (g, t, [s, a, b, c, d])
    }

    #[test]
    fn figure1_local_detour_rd_is_two() {
        let (g, t, [_, a, _, c, d]) = figure1();
        let l_ad = g.link_between(a, d).unwrap();
        let scenario = FailureScenario::link(l_ad);
        let rec = recover(&g, &t, &scenario, d, DetourKind::Local).unwrap();
        assert_eq!(rec.attach(), c);
        assert_eq!(rec.recovery_distance(), 2.0);
        assert_eq!(rec.restoration_path().nodes(), &[d, c]);
        assert_eq!(rec.new_links().len(), 1);
        // New end-to-end delay: S->A->C (2) + C->D (2).
        assert_eq!(rec.new_end_to_end_delay(), 4.0);
    }

    #[test]
    fn figure1_global_detour_rd_is_three() {
        let (g, t, [s, a, b, _, d]) = figure1();
        let l_ad = g.link_between(a, d).unwrap();
        let scenario = FailureScenario::link(l_ad);
        let rec = recover(&g, &t, &scenario, d, DetourKind::Global).unwrap();
        // New SPF path is D -> B -> S (delay 3); no on-tree node before S.
        assert_eq!(rec.restoration_path().nodes(), &[d, b, s]);
        assert_eq!(rec.attach(), s);
        assert_eq!(rec.recovery_distance(), 3.0);
        assert_eq!(rec.new_links().len(), 2);
    }

    #[test]
    fn new_links_exclude_reused_usable_tree_links() {
        // Figure 1 topology, source-incident failure S-A: member C's local
        // detour to the surviving tree (just S) runs C-A-D-B-S, reusing the
        // still-usable tree links C-A and A-D inside the disconnected
        // fragment. Only D-B and B-S need to be newly established.
        let (g, t, [s, a, b, c, d]) = figure1();
        let l_sa = g.link_between(s, a).unwrap();
        let scenario = FailureScenario::link(l_sa);
        let rec = recover(&g, &t, &scenario, c, DetourKind::Local).unwrap();
        assert_eq!(rec.restoration_path().nodes(), &[c, a, d, b, s]);
        assert_eq!(rec.attach(), s);
        let mut new_links = rec.new_links().to_vec();
        new_links.sort();
        let mut expected = vec![g.link_between(d, b).unwrap(), g.link_between(b, s).unwrap()];
        expected.sort();
        assert_eq!(new_links, expected);
        // The failed tree link itself never shows up as reusable.
        assert!(!rec.new_links().contains(&l_sa));
    }

    #[test]
    fn local_beats_or_ties_global_here() {
        let (g, t, [_, a, _, _, d]) = figure1();
        let l_ad = g.link_between(a, d).unwrap();
        let scenario = FailureScenario::link(l_ad);
        let (local, global) = compare_detours(&g, &t, &scenario, d).unwrap();
        assert!(local.recovery_distance() <= global.recovery_distance());
    }

    #[test]
    fn source_link_failure_affects_both_members() {
        let (g, t, [s, a, _, c, d]) = figure1();
        let l_sa = g.link_between(s, a).unwrap();
        let scenario = FailureScenario::link(l_sa);
        let mut affected = affected_members(&g, &t, &scenario);
        affected.sort();
        assert_eq!(affected, vec![c, d]);
        let surviving = surviving_connected(&g, &t, &scenario);
        assert_eq!(surviving, vec![s]);
    }

    #[test]
    fn not_affected_member_is_reported() {
        let (g, t, [_, a, _, c, d]) = figure1();
        let l_ad = g.link_between(a, d).unwrap();
        let scenario = FailureScenario::link(l_ad);
        assert_eq!(
            recover(&g, &t, &scenario, c, DetourKind::Local),
            Err(RecoveryError::NotAffected(c))
        );
    }

    #[test]
    fn failed_member_is_unrecoverable() {
        let (g, t, [_, _, _, _, d]) = figure1();
        let scenario = FailureScenario::node(d);
        assert_eq!(
            recover(&g, &t, &scenario, d, DetourKind::Local),
            Err(RecoveryError::Unrecoverable(d))
        );
    }

    #[test]
    fn isolated_member_is_unrecoverable() {
        let (g, t, [_, a, b, _, d]) = figure1();
        // Cut every route out of D: links A-D, C-D, B-D.
        let mut scenario = FailureScenario::link(g.link_between(a, d).unwrap());
        scenario.fail_link(g.link_between(NodeId::new(3), d).unwrap());
        scenario.fail_link(g.link_between(d, b).unwrap());
        assert_eq!(
            recover(&g, &t, &scenario, d, DetourKind::Local),
            Err(RecoveryError::Unrecoverable(d))
        );
        assert_eq!(
            recover(&g, &t, &scenario, d, DetourKind::Global),
            Err(RecoveryError::Unrecoverable(d))
        );
    }

    #[test]
    fn node_failure_disconnects_subtree() {
        let (g, t, [s, a, _, c, d]) = figure1();
        let scenario = FailureScenario::node(a);
        let mut affected = affected_members(&g, &t, &scenario);
        affected.sort();
        assert_eq!(affected, vec![c, d]);
        // C recovers via D? C's options avoiding A: C-D (2). D is on tree
        // but disconnected, so C must reach S: C-D-B-S prefix stops at S.
        let rec = recover(&g, &t, &scenario, c, DetourKind::Local).unwrap();
        assert_eq!(rec.attach(), s);
        let _ = rec;
    }

    #[test]
    fn worst_case_failure_is_source_incident_link() {
        let (g, t, [s, a, _, c, _]) = figure1();
        let l = worst_case_failure_for(&g, &t, c).unwrap();
        assert_eq!(l, g.link_between(s, a).unwrap());
    }

    #[test]
    fn worst_case_failure_for_off_tree_node_is_none() {
        let (g, t, [_, _, b, _, _]) = figure1();
        assert_eq!(worst_case_failure_for(&g, &t, b), None);
    }

    #[test]
    fn source_failure_leaves_nothing_connected() {
        let (g, t, [s, _, _, _, _]) = figure1();
        let scenario = FailureScenario::node(s);
        assert!(surviving_connected(&g, &t, &scenario).is_empty());
    }

    #[test]
    fn simultaneous_node_and_link_failure_still_recovers_locally() {
        // Fail node A *and* link C-D at once: C and D are both cut off,
        // and the C-D shortcut they would otherwise detour over is gone.
        // Both must route around through B independently.
        let (g, t, [s, a, b, c, d]) = figure1();
        let scenario = FailureScenario::node(a).with_link(g.link_between(c, d).unwrap());
        let mut affected = affected_members(&g, &t, &scenario);
        affected.sort();
        assert_eq!(affected, vec![c, d]);
        // C has no usable route at all: C's links are C-A (node down) and
        // C-D (link down).
        assert_eq!(
            recover(&g, &t, &scenario, c, DetourKind::Local),
            Err(RecoveryError::Unrecoverable(c))
        );
        // D still reaches the surviving tree {S} via B.
        let rec = recover(&g, &t, &scenario, d, DetourKind::Local).unwrap();
        assert_eq!(rec.restoration_path().nodes(), &[d, b, s]);
        assert_eq!(rec.attach(), s);
        assert_eq!(rec.recovery_distance(), 3.0);
        // The reachability oracle agrees member-by-member.
        let reach = reachable_from_source(&g, s, &scenario);
        assert!(!reach[c.index()]);
        assert!(reach[d.index()]);
        assert!(!reach[a.index()], "failed nodes are unreachable");
    }

    #[test]
    fn mixed_failure_merged_from_parts_equals_direct_construction() {
        let (g, t, [_, a, _, c, d]) = figure1();
        let l_ad = g.link_between(a, d).unwrap();
        let direct = FailureScenario::link(l_ad).with_node(c);
        let merged = FailureScenario::link(l_ad).merged(&FailureScenario::node(c));
        assert_eq!(direct, merged);
        // D's local detour must now avoid both the failed link and the
        // failed node C (which blocks the D->C shortcut of Figure 1).
        let rec = recover(&g, &t, &merged, d, DetourKind::Local).unwrap();
        assert!(rec.restoration_path().nodes().iter().all(|&n| n != c));
        assert!(!rec.restoration_path().nodes().contains(&a) || rec.attach() == a);
    }

    #[test]
    fn reachability_oracle_matches_recover_outcomes() {
        // Every affected, usable member: reachable ⇔ recoverable.
        let (g, t, [s, a, _, _, d]) = figure1();
        for scenario in [
            FailureScenario::node(a),
            FailureScenario::node(a).with_node(d),
            FailureScenario::link(g.link_between(s, a).unwrap())
                .with_link(g.link_between(d, NodeId::new(2)).unwrap()),
        ] {
            let reach = reachable_from_source(&g, s, &scenario);
            for m in affected_members(&g, &t, &scenario) {
                if !scenario.node_usable(m) {
                    assert!(!reach[m.index()], "failed member {m} cannot be reachable");
                    continue;
                }
                let recovered = recover(&g, &t, &scenario, m, DetourKind::Local).is_ok();
                assert_eq!(
                    reach[m.index()],
                    recovered,
                    "oracle and recover() disagree on {m} under {scenario}"
                );
            }
        }
    }

    #[test]
    fn global_detour_stops_at_first_connected_on_tree_node() {
        // Make the post-failure SPF path for the member pass through a
        // still-connected on-tree relay: the restoration path must stop
        // there instead of running to the source.
        let mut g = Graph::with_nodes(5);
        let ids: Vec<_> = g.node_ids().collect();
        let [s, r, m, x, y] = [ids[0], ids[1], ids[2], ids[3], ids[4]];
        g.add_link(s, r, 1.0).unwrap(); // tree: S-R-M
        g.add_link(r, m, 1.0).unwrap();
        g.add_link(m, x, 1.0).unwrap(); // detour M-X-R
        g.add_link(x, r, 1.0).unwrap();
        g.add_link(x, y, 5.0).unwrap();
        g.add_link(y, s, 5.0).unwrap();
        let mut t = MulticastTree::new(&g, s).unwrap();
        t.attach_path(&NetPath::new(vec![m, r, s]));
        t.set_member(m, true).unwrap();
        t.set_member(r, true).unwrap();
        let l_rm = g.link_between(r, m).unwrap();
        let scenario = FailureScenario::link(l_rm);
        let rec = recover(&g, &t, &scenario, m, DetourKind::Global).unwrap();
        assert_eq!(rec.restoration_path().nodes(), &[m, x, r]);
        assert_eq!(rec.attach(), r);
        assert_eq!(rec.recovery_distance(), 2.0);
    }
}
