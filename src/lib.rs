#![warn(missing_docs)]

//! Facade crate for the SMRP reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can use a
//! single dependency. See the workspace `README.md` for an overview and
//! `DESIGN.md` for the system inventory.

pub use smrp_core as core;
pub use smrp_experiments as experiments;
pub use smrp_metrics as metrics;
pub use smrp_net as net;
pub use smrp_proto as proto;
pub use smrp_sim as sim;
