//! Replays the paper's worked examples — Figures 1, 2, 4 and 5 — with the
//! actual library, printing each step next to the paper's claim.
//!
//! Run with: `cargo run --example paper_walkthrough`

use smrp_repro::core::paper;
use smrp_repro::core::recovery::{self, DetourKind};
use smrp_repro::core::session::ReshapeOutcome;
use smrp_repro::net::FailureScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("— Figure 1: local vs global detour —");
    let (g, tree, n) = paper::figure1();
    println!(
        "tree: S->A->{{C,D}}; SHR(S,C) = {} (paper: N_L(S,A) + N_L(A,C) = 2 + 1 = 3)",
        tree.shr(n.c)
    );
    let l_ad = g.link_between(n.a, n.d).expect("figure link exists");
    let fail_fig1 = FailureScenario::link(l_ad);
    let local = recovery::recover(&g, &tree, &fail_fig1, n.d, DetourKind::Local)?;
    let global = recovery::recover(&g, &tree, &fail_fig1, n.d, DetourKind::Global)?;
    println!(
        "L_AD fails: global detour {} (RD {:.0}), local detour {} (RD {:.0}; paper: RD_D = 2)",
        global.restoration_path(),
        global.recovery_distance(),
        local.restoration_path(),
        local.recovery_distance()
    );

    println!("\n— Figure 2: the disjoint tree SMRP builds —");
    let (g2, n2) = paper::figure1_graph();
    let sess = paper::figure2_smrp_tree(&g2, n2);
    println!(
        "with a relaxed bound, D's path becomes {} (disjoint from C's {})",
        sess.tree().path_from_source(n2.d).expect("D is a member"),
        sess.tree().path_from_source(n2.c).expect("C is a member"),
    );
    let l_sa = g2.link_between(n2.s, n2.a).expect("figure link exists");
    let fail = FailureScenario::link(l_sa);
    let affected = recovery::affected_members(&g2, sess.tree(), &fail);
    println!("L_SA fails: only {affected:?} disrupted (paper: at most one member per failure)",);
    let rec = recovery::recover(&g2, sess.tree(), &fail, n2.c, DetourKind::Local)?;
    println!(
        "C recovers through neighbor {} with RD {:.0}",
        rec.attach(),
        rec.recovery_distance()
    );

    println!("\n— Figure 4: the join walkthrough (D_thresh = 0.3) —");
    let (g4, n4, mut sess4) = paper::figure4();
    for (name, node) in [("E", n4.e), ("G", n4.g), ("F", n4.f)] {
        let path = sess4.tree().path_from_source(node).expect("member joined");
        println!("{name} joined along {path}");
    }
    println!(
        "SHR(S,D) after F = {} (paper: increased from 2 to 4)",
        sess4.tree().shr(n4.d)
    );

    println!("\n— Figure 5: tree reshaping at E —");
    match sess4.reshape_member(n4.e)? {
        ReshapeOutcome::Switched {
            old_merger,
            new_merger,
        } => println!(
            "E switched from merger {old_merger} to {new_merger} \
             (paper: D with SHR 4 to A with SHR 2)"
        ),
        ReshapeOutcome::Kept => println!("E kept its path (unexpected)"),
    }
    println!(
        "E's path is now {} (paper: E->C->A->S)",
        sess4.tree().path_from_source(n4.e).expect("E is a member")
    );
    sess4.tree().validate(&g4).expect("tree invariants hold");

    // Bonus: emit Graphviz renderings of the reproduced figures.
    let out_dir = std::path::Path::new("results");
    std::fs::create_dir_all(out_dir)?;
    let fig1 = smrp_repro::core::viz::DotExport::new(&g, &tree)
        .failures(&fail_fig1)
        .restoration(local.restoration_path())
        .render();
    std::fs::write(out_dir.join("figure1.dot"), fig1)?;
    let fig5 = smrp_repro::core::viz::DotExport::new(&g4, sess4.tree()).render();
    std::fs::write(out_dir.join("figure5.dot"), fig5)?;
    println!("wrote results/figure1.dot and results/figure5.dot (render with `dot -Tsvg`)");

    println!("\nall figures reproduced.");
    Ok(())
}
