//! The 2-level hierarchical recovery architecture of §3.3.3 (Figure 6):
//! stub recovery domains with agents, failure attribution, and in-domain
//! repair on a transit-stub topology.
//!
//! Run with: `cargo run --example hierarchical_recovery`

use smrp_repro::core::SmrpConfig;
use smrp_repro::net::transit_stub::TransitStubConfig;
use smrp_repro::proto::hierarchy::{FailureScope, HierarchicalSession};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = TransitStubConfig::new()
        .transit_nodes(4)
        .stubs_per_transit_node(2)
        .stub_nodes(8)
        .extra_edge_prob(0.5)
        .seed(11)
        .generate()?;
    println!(
        "transit-stub topology: {} nodes ({} transit, {} stub domains)",
        topo.graph().node_count(),
        topo.transit_domain().nodes().len(),
        topo.stub_domains().count()
    );

    // The source lives in the first stub; members spread over three stubs.
    let stubs: Vec<_> = topo.stub_domains().collect();
    let source = stubs[0].nodes()[0];
    let members = vec![
        stubs[0].nodes()[3],
        stubs[2].nodes()[1],
        stubs[2].nodes()[5],
        stubs[4].nodes()[2],
    ];
    let session = HierarchicalSession::build(&topo, source, &members, SmrpConfig::default())
        .map_err(|e| format!("hierarchy failed to build: {e}"))?;
    println!("source {source}, members {members:?}\n");

    // Walk over every link; show where failures land and how they are
    // repaired without leaving their domain.
    let mut shown_stub = false;
    let mut shown_transit = false;
    for link in topo.graph().link_ids() {
        let scope = session.domain_of_link(link);
        let Ok(rec) = session.recover(link) else {
            continue;
        };
        if rec.affected_members.is_empty() {
            continue;
        }
        match scope {
            FailureScope::Stub(d) if !shown_stub => {
                shown_stub = true;
                println!(
                    "link {link} fails inside stub domain {d}: {} member(s) disrupted, \
                     repaired with RD {:.1} entirely inside the domain ({} restoration \
                     path(s))",
                    rec.affected_members.len(),
                    rec.recovery_distance,
                    rec.restoration_paths.len()
                );
            }
            FailureScope::Transit if !shown_transit => {
                shown_transit = true;
                println!(
                    "link {link} fails at transit level: agents re-route inside the \
                     transit domain (RD {:.1}), downstream stubs are untouched",
                    rec.recovery_distance
                );
            }
            _ => {}
        }
        if shown_stub && shown_transit {
            break;
        }
    }

    println!(
        "\nas §3.3.3 puts it: \"any node/link failure inside a recovery domain is \
         handled by that domain\" — no repair crossed a domain boundary."
    );
    Ok(())
}
