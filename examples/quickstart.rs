//! Quickstart: build a topology, run an SMRP session, survive a failure.
//!
//! Run with: `cargo run --example quickstart`

use smrp_repro::core::recovery::{self, DetourKind};
use smrp_repro::core::{SmrpConfig, SmrpSession, SpfSession};
use smrp_repro::net::waxman::WaxmanConfig;
use smrp_repro::net::FailureScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A 100-node Waxman topology, as in the paper's simulation setup.
    let graph = WaxmanConfig::new(100)
        .alpha(0.2)
        .seed(2026)
        .generate()?
        .into_graph();
    println!(
        "topology: {} nodes, {} links, average degree {:.2}",
        graph.node_count(),
        graph.link_count(),
        graph.average_degree()
    );

    // 2. An SMRP session with the paper's default D_thresh = 0.3.
    let source = graph.node_ids().next().expect("graph is non-empty");
    let mut smrp = SmrpSession::new(&graph, source, SmrpConfig::default())?;
    let mut spf = SpfSession::new(&graph, source)?;

    let members: Vec<_> = graph
        .node_ids()
        .filter(|n| n.index() % 7 == 3)
        .take(12)
        .collect();
    for &m in &members {
        let out = smrp.join(m)?;
        spf.join(m)?;
        println!(
            "member {m}: merger {} (SHR {}), delay {:.1} vs SPF {:.1}",
            out.merger,
            smrp.tree().shr(out.merger),
            out.selected_delay,
            out.spf_delay
        );
    }
    println!(
        "tree cost: SMRP {:.0} vs SPF {:.0} links-worth",
        smrp.tree().cost(&graph),
        spf.tree().cost(&graph)
    );

    // 3. Worst-case failure for the first member: the link next to the
    //    source on its path (§4.3.1), then recover both ways.
    let member = members[0];
    let failed = recovery::worst_case_failure_for(&graph, smrp.tree(), member)
        .expect("member path has a source-incident link");
    let scenario = FailureScenario::link(failed);
    println!("\ninjecting worst-case failure for {member}: {scenario}");

    let local = recovery::recover(&graph, smrp.tree(), &scenario, member, DetourKind::Local)?;
    let global = recovery::recover(&graph, smrp.tree(), &scenario, member, DetourKind::Global)?;
    println!(
        "local detour:  attach {} via {} (RD = {:.1})",
        local.attach(),
        local.restoration_path(),
        local.recovery_distance()
    );
    println!(
        "global detour: attach {} via {} (RD = {:.1})",
        global.attach(),
        global.restoration_path(),
        global.recovery_distance()
    );
    println!(
        "local detour is {:.0}% shorter",
        (1.0 - local.recovery_distance() / global.recovery_distance()) * 100.0
    );
    Ok(())
}
