//! A QoS-sensitive video conference (the paper's motivating workload):
//! members churn in and out, the tree reshapes itself, a backbone link
//! suffers a persistent cut mid-session, and every disconnected viewer
//! recovers through a local detour.
//!
//! Run with: `cargo run --example video_conference`

use smrp_repro::core::recovery::{self, DetourKind, RecoveryError};
use smrp_repro::core::{SmrpConfig, SmrpSession};
use smrp_repro::net::waxman::WaxmanConfig;
use smrp_repro::net::FailureScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = WaxmanConfig::new(80)
        .alpha(0.25)
        .seed(7)
        .generate()?
        .into_graph();
    let ids: Vec<_> = graph.node_ids().collect();
    let speaker = ids[0];

    let mut session = SmrpSession::new(
        &graph,
        speaker,
        SmrpConfig {
            d_thresh: 0.3,
            ..SmrpConfig::default()
        },
    )?;

    // Act 1: the audience trickles in.
    let audience: Vec<_> = ids
        .iter()
        .copied()
        .filter(|n| n.index() % 5 == 2)
        .take(14)
        .collect();
    for &viewer in &audience {
        let out = session.join(viewer)?;
        if out.reshaped.is_empty() {
            println!("{viewer} joined via merger {}", out.merger);
        } else {
            println!(
                "{viewer} joined via merger {} — reshaped {:?} to keep sharing low",
                out.merger, out.reshaped
            );
        }
    }
    println!(
        "act 1: {} viewers, tree cost {:.0}, mean delay {:.1}",
        session.tree().member_count(),
        session.tree().cost(&graph),
        session.tree().average_member_delay(&graph)
    );

    // Act 2: churn — a third of the audience leaves, new viewers arrive,
    // the periodic reshaping sweep (Condition II) tidies the tree.
    for &viewer in audience.iter().take(4) {
        session.leave(viewer)?;
        println!("{viewer} left");
    }
    let latecomers: Vec<_> = ids
        .iter()
        .copied()
        .filter(|n| n.index() % 7 == 4)
        .take(5)
        .filter(|v| !session.tree().is_member(*v) && *v != speaker)
        .collect();
    for &viewer in &latecomers {
        session.join(viewer)?;
        println!("{viewer} joined late");
    }
    let switched = session.reshape_sweep();
    println!("act 2: periodic reshaping sweep moved {switched} viewers");
    session
        .tree()
        .validate(&graph)
        .expect("tree invariants hold");
    println!(
        "tree audit: {}",
        smrp_repro::core::audit::audit(&graph, session.tree(), 0.3)
    );

    // Act 3: a backbone cable is cut — the worst-case link for the most
    // loaded branch (the source-incident link with the largest subtree).
    let worst = session
        .tree()
        .children(speaker)
        .iter()
        .copied()
        .max_by_key(|c| session.tree().subtree_members(*c))
        .expect("the tree has branches");
    let link = graph.link_between(speaker, worst).expect("tree edge");
    let cut = FailureScenario::link(link);
    let affected = recovery::affected_members(&graph, session.tree(), &cut);
    println!(
        "\nact 3: backbone cut {cut} disconnects {} of {} viewers",
        affected.len(),
        session.tree().member_count()
    );

    let mut total_local = 0.0;
    let mut total_global = 0.0;
    for &viewer in &affected {
        match (
            recovery::recover(&graph, session.tree(), &cut, viewer, DetourKind::Local),
            recovery::recover(&graph, session.tree(), &cut, viewer, DetourKind::Global),
        ) {
            (Ok(local), Ok(global)) => {
                println!(
                    "  {viewer}: local RD {:.1} via {}, global RD {:.1}",
                    local.recovery_distance(),
                    local.attach(),
                    global.recovery_distance()
                );
                total_local += local.recovery_distance();
                total_global += global.recovery_distance();
            }
            (Err(RecoveryError::Unrecoverable(v)), _)
            | (_, Err(RecoveryError::Unrecoverable(v))) => {
                println!("  {v}: no non-faulty route exists");
            }
            (Err(e), _) | (_, Err(e)) => println!("  {viewer}: {e}"),
        }
    }
    if total_global > 0.0 {
        println!(
            "local detours are {:.0}% shorter in aggregate — the conference \
             resumes before viewers notice",
            (1.0 - total_local / total_global) * 100.0
        );
    }
    Ok(())
}
