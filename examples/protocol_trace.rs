//! Message-level protocol trace: watch the soft-state machinery, the
//! heartbeat failure detection and the local-detour graft happen packet by
//! packet on the Figure 1 topology.
//!
//! Run with: `cargo run --example protocol_trace`

use smrp_repro::core::paper;
use smrp_repro::net::FailureScenario;
use smrp_repro::proto::{ProtoSession, RecoveryStrategy, TreeProtocol};
use smrp_repro::sim::SimTime;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (graph, nodes) = paper::figure1_graph();
    let session = ProtoSession::build(&graph, nodes.s, &[nodes.c, nodes.d], TreeProtocol::Spf)
        .map_err(|e| format!("session failed to build: {e}"))?;

    println!("Figure 1 topology; tree S->A->{{C,D}}, members C (n3) and D (n4).");
    println!("failing L_AD at t = 100 ms; SMRP recovers D through C.\n");

    let l_ad = graph.link_between(nodes.a, nodes.d).expect("figure link");
    let scenario = FailureScenario::link(l_ad);

    let report = session.run_failure(
        &scenario,
        RecoveryStrategy::LocalDetour,
        SimTime::from_ms(100.0),
        SimTime::from_ms(400.0),
    );

    for (member, latency) in &report.restorations {
        match latency {
            Some(t) => println!(
                "member {member}: service restored {:.1} ms after the cut",
                t.as_ms()
            ),
            None => println!("member {member}: service NOT restored"),
        }
    }
    println!("unaffected members kept receiving: {:?}", report.unaffected);
    println!(
        "{} messages delivered, {} dropped on the failed component",
        report.messages_delivered, report.messages_dropped
    );

    // Same failure, baseline recovery: the re-join must wait out OSPF
    // reconvergence (30 s modelled), so the session stalls for ~300x longer.
    let baseline = session.run_failure(
        &scenario,
        RecoveryStrategy::GlobalDetour {
            reconvergence: SimTime::from_ms(30_000.0),
        },
        SimTime::from_ms(100.0),
        SimTime::from_ms(40_000.0),
    );
    if let Some((member, Some(t))) = baseline.restorations.first() {
        println!(
            "\nbaseline (PIM over OSPF): member {member} waits {:.0} ms — \
             the local detour was {:.0}x faster",
            t.as_ms(),
            t.as_ms()
                / report.restorations[0]
                    .1
                    .map(|l| l.as_ms())
                    .unwrap_or(f64::INFINITY)
        );
    }
    Ok(())
}
